(* Property-based tests (qcheck) on the core invariants: coalescing,
   search, DOP control, and randomized program/backends agreement. *)
open Ppat_ir
module M = Ppat_core.Mapping
module Q = QCheck2

let dev = Ppat_gpu.Device.k20c

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- coalescing --- *)

let prop_coalesce_bounds =
  Q.Test.make ~name:"coalesce count within [1, lanes]" ~count:200
    Q.Gen.(list_size (int_range 1 32) (int_range 0 100_000))
    (fun addrs ->
      let t = Ppat_gpu.Memory.coalesce ~transaction_bytes:128 addrs in
      t >= 1 && t <= List.length addrs)

let prop_coalesce_permutation =
  Q.Test.make ~name:"coalesce order-independent" ~count:200
    Q.Gen.(list_size (int_range 1 32) (int_range 0 10_000))
    (fun addrs ->
      let t1 = Ppat_gpu.Memory.coalesce ~transaction_bytes:128 addrs in
      let t2 =
        Ppat_gpu.Memory.coalesce ~transaction_bytes:128 (List.rev addrs)
      in
      t1 = t2)

let prop_coalesce_contiguous =
  Q.Test.make ~name:"aligned contiguous f64 warp = 2 transactions" ~count:50
    Q.Gen.(int_range 0 1000)
    (fun base ->
      let addrs = List.init 32 (fun i -> (base * 256) + (i * 8)) in
      Ppat_gpu.Memory.coalesce ~transaction_bytes:128 addrs = 2)

(* --- search and DOP --- *)

let gen_sizes = Q.Gen.(pair (int_range 2 8192) (int_range 2 8192))

let prop_search_hard_feasible =
  Q.Test.make ~name:"auto mapping satisfies hard constraints" ~count:40
    gen_sizes
    (fun (r, c) ->
      let app = Ppat_apps.Sum_rows_cols.sum_rows ~r ~c () in
      let n =
        match app.prog.Pat.steps with
        | Pat.Launch n :: _ -> n
        | _ -> assert false
      in
      let col =
        Ppat_core.Collect.collect ~params:app.params ?bind:n.bind dev
          app.prog n.pat
      in
      let res = Ppat_core.Search.search dev col in
      let m = res.mapping in
      M.threads_per_block m <= dev.max_threads_per_block
      && (match m.(1).M.span with
          | M.Span_all | M.Split _ -> true
          | M.Span _ -> false)
      && m.(0).M.dim <> m.(1).M.dim)

let prop_dop_control_direction =
  Q.Test.make ~name:"ControlDOP never moves away from the window" ~count:100
    Q.Gen.(
      triple (int_range 1 1_000_000) (int_range 0 1)
        (pair (int_range 0 10) (int_range 0 5)))
    (fun (size, dim_i, (b_exp, _)) ->
      let d = if dim_i = 0 then M.X else M.Y in
      let bsize = 1 lsl b_exp in
      let m0 = [| { M.dim = d; bsize; span = M.span1 } |] in
      let sizes = [| size |] in
      let before = M.dop ~sizes m0 in
      let after = M.dop ~sizes (Ppat_core.Dop.control dev ~sizes m0) in
      let mn = Ppat_gpu.Device.min_dop dev in
      let mx = Ppat_gpu.Device.max_dop dev in
      if before > mx then after <= before
      else if before < mn then after >= before
      else after = before)

let prop_score_monotone_subset =
  Q.Test.make ~name:"score is a sum of satisfied weights" ~count:50
    Q.Gen.(int_range 1 64)
    (fun k ->
      let softs =
        [
          Ppat_core.Constr.Min_block { weight = float_of_int k };
          Ppat_core.Constr.Fit { level = 0; size = 100; weight = 2. };
        ]
      in
      let m = [| { M.dim = M.X; bsize = 128; span = M.span1 } |] in
      Ppat_core.Score.score dev softs m = float_of_int k +. 2.)

let prop_next_pow2 =
  Q.Test.make ~name:"next_pow2" ~count:200
    Q.Gen.(int_range 1 100_000)
    (fun n ->
      let p = Ppat_core.Score.next_pow2 n in
      p >= n && p / 2 < n && p land (p - 1) = 0)

(* --- randomized backend agreement: a random reduce over a random array
   must agree between the CPU oracle and the simulated GPU under a random
   strategy --- *)

let reducers =
  [| Pat.sum_reducer; Pat.max_reducer; Pat.min_reducer |]

let prop_backend_agreement =
  Q.Test.make ~name:"random reduce agrees CPU vs GPU" ~count:25
    Q.Gen.(
      quad (int_range 1 200) (int_range 1 100) (int_range 0 2)
        (int_range 0 3))
    (fun (rows, cols, red_i, strat_i) ->
      let b = Builder.create () in
      let r = reducers.(red_i) in
      let top =
        Builder.map b ~label:"rows" ~size:(Pat.Sconst rows) (fun row ->
            let red =
              Builder.reduce b ~r ~label:"cols" ~size:(Pat.Sconst cols)
                (fun col -> ([], Exp.Read ("m", [ row; col ])))
            in
            ([ Builder.bind "s" red ], Exp.Var "s"))
      in
      let prog =
        {
          Pat.pname = "prop";
          defaults = [];
          buffers =
            [
              Pat.buffer "m" Ty.F64 [ Ty.Const rows; Ty.Const cols ] Pat.Input;
              Pat.buffer "out" Ty.F64 [ Ty.Const rows ] Pat.Output;
            ];
          steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
        }
      in
      let data =
        [ ("m", Host.F (Ppat_apps.Workloads.farray ~seed:(rows + cols) (rows * cols))) ]
      in
      let strat =
        List.nth
          Ppat_core.Strategy.
            [ Auto; One_d; Thread_block_thread; Warp_based ]
          strat_i
      in
      let cpu = Ppat_harness.Runner.run_cpu prog data in
      let gpu = Ppat_harness.Runner.run_gpu dev prog strat data in
      Ppat_harness.Runner.check ~eps:1e-9 prog ~expected:cpu.cpu_data
        ~actual:gpu.data
      = Ok ())

let prop_filter_agreement =
  Q.Test.make ~name:"random filter agrees CPU vs GPU (as multiset)" ~count:20
    Q.Gen.(pair (int_range 1 500) (int_range 1 99))
    (fun (n, threshold) ->
      let b = Builder.create () in
      let top =
        Builder.filter b ~label:"keep" ~size:(Pat.Sconst n)
          ~pred:(fun i ->
            Exp.Cmp
              ( Exp.Lt,
                Exp.Read ("src", [ i ]),
                Exp.Float (float_of_int threshold /. 100.) ))
          (fun i -> Exp.Read ("src", [ i ]))
      in
      let prog =
        {
          Pat.pname = "propf";
          defaults = [];
          buffers =
            [
              Pat.buffer "src" Ty.F64 [ Ty.Const n ] Pat.Input;
              Pat.buffer "out" Ty.F64 [ Ty.Const n ] Pat.Output;
              Pat.buffer "out_count" Ty.I32 [ Ty.Const 1 ] Pat.Output;
            ];
          steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
        }
      in
      let data = [ ("src", Host.F (Ppat_apps.Workloads.farray ~seed:n n)) ] in
      let cpu = Ppat_harness.Runner.run_cpu prog data in
      let gpu =
        Ppat_harness.Runner.run_gpu dev prog Ppat_core.Strategy.Auto data
      in
      Ppat_harness.Runner.check ~eps:1e-12 ~unordered:[ "out" ] prog
        ~expected:cpu.cpu_data ~actual:gpu.data
      = Ok ())

let prop_approx_equal_reflexive =
  Q.Test.make ~name:"approx_equal reflexive" ~count:100
    Q.Gen.(list_size (int_range 0 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Host.F (Array.of_list xs) in
      Host.approx_equal a a)

(* allocation modes must never change results, only layout/cost *)
let prop_alloc_modes_equivalent =
  Q.Test.make ~name:"alloc modes agree on results" ~count:12
    Q.Gen.(pair (int_range 2 60) (int_range 2 60))
    (fun (r, c) ->
      let app = Ppat_apps.Sum_rows_cols.sum_weighted_cols ~r ~c () in
      let data = Ppat_apps.App.input_data app in
      let cpu = Ppat_harness.Runner.run_cpu ~params:app.params app.prog data in
      List.for_all
        (fun mode ->
          let opts =
            { Ppat_codegen.Lower.default_options with alloc_mode = mode }
          in
          let gpu =
            Ppat_harness.Runner.run_gpu ~opts ~params:app.params dev app.prog
              Ppat_core.Strategy.Auto data
          in
          Ppat_harness.Runner.check ~eps:1e-9 app.prog
            ~expected:cpu.cpu_data ~actual:gpu.data
          = Ok ())
        Ppat_codegen.Lower.[ Malloc; Prealloc; Prealloc_opt ])

let prop_stride_linear =
  Q.Test.make ~name:"stride is linear in the index expression" ~count:200
    Q.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
      let e =
        Exp.Bin
          ( Exp.Add,
            Exp.Bin (Exp.Mul, Exp.Int a, Exp.Idx 0),
            Exp.Int b )
      in
      Access.stride_of ~params:[] ~env:[] ~wrt:0 e = Access.Known a)

let prop_grid_covers_domain =
  Q.Test.make ~name:"span(1)/span(n) grids cover the domain" ~count:200
    Q.Gen.(triple (int_range 1 100_000) (int_range 0 5) (int_range 1 16))
    (fun (size, b_exp, n) ->
      let bsize = 32 lsl b_exp in
      let m =
        [| { M.dim = M.X; bsize; span = M.Span n } |]
      in
      let g = M.grid_extent ~sizes:[| size |] m M.X in
      g * bsize * n >= size && (g - 1) * bsize * n < size)

let tests =
  List.map to_alcotest
    [
      prop_coalesce_bounds;
      prop_coalesce_permutation;
      prop_coalesce_contiguous;
      prop_search_hard_feasible;
      prop_dop_control_direction;
      prop_score_monotone_subset;
      prop_next_pow2;
      prop_backend_agreement;
      prop_filter_agreement;
      prop_approx_equal_reflexive;
      prop_alloc_modes_equivalent;
      prop_stride_linear;
      prop_grid_covers_domain;
    ]
