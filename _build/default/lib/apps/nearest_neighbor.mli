(** Rodinia Nearest Neighbor: one level of parallelism (a flat Map
    computing a Euclidean distance per record). Included in Figure 12 as
    the baseline for generated-versus-manual code quality on code with no
    mapping decisions to make. *)

val app : ?n:int -> unit -> App.t
