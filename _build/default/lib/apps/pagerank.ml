open Ppat_ir
open Exp.Infix

let damp = 0.85

let app ?(nodes = 8192) ?(avg_degree = 8) ?(iters = 3) () =
  let b = Builder.create () in
  let top =
    (* nodes map { n => sumWeights = nbrs reduce ...; (1-d)/N + d*sum } *)
    Builder.map b ~label:"pagerank" ~size:(Pat.Sparam "NODES") (fun n ->
        let deg = read "row_ptr" [ n + i 1 ] - read "row_ptr" [ n ] in
        let sum_weights =
          Builder.reduce b ~label:"nbr_weights" ~size:(Pat.Sdyn deg) (fun e ->
              let w = read "cols" [ read "row_ptr" [ n ] + e ] in
              ( [ Pat.Let ("w", w) ],
                read "pr" [ v "w" ]
                / max_ (f 1.) (i2f (read "out_deg" [ v "w" ])) ))
        in
        ( [ Builder.bind "sumWeights" sum_weights ],
          (f (1. -. damp) / i2f (p "NODES")) + (f damp * v "sumWeights") ))
  in
  let prog =
    {
      Pat.pname = "pagerank";
      defaults =
        [
          ("NODES", nodes);
          ("EDGES", Stdlib.( * ) nodes avg_degree);
          ("ITERS", iters);
          ("HINT_nbr_weights", avg_degree);
        ];
      buffers =
        [
          Pat.buffer "row_ptr" Ty.I32 [ Ty.Const (Stdlib.( + ) nodes 1) ]
            Pat.Input;
          Pat.buffer "cols" Ty.I32 [ Ty.Param "EDGES" ] Pat.Input;
          Pat.buffer "out_deg" Ty.I32 [ Ty.Param "NODES" ] Pat.Input;
          Pat.buffer "pr" Ty.F64 [ Ty.Param "NODES" ] Pat.Input;
          Pat.buffer "pr_next" Ty.F64 [ Ty.Param "NODES" ] Pat.Output;
        ];
      steps =
        [
          Pat.Host_loop
            {
              var = "iter";
              count = Ty.Param "ITERS";
              body =
                [
                  Pat.Launch { bind = Some "pr_next"; pat = top };
                  Pat.Swap ("pr", "pr_next");
                ];
            };
        ];
    }
  in
  App.make ~name:"PageRank"
    ~gen:(fun params ->
      let n = List.assoc "NODES" params in
      let edges = List.assoc "EDGES" params in
      let row_ptr, cols =
        Workloads.csr_graph ~seed:121 ~nodes:n ~avg_degree
      in
      let m = row_ptr.(n) in
      let cols' = Array.make edges 0 in
      Array.blit cols 0 cols' 0 (min m edges);
      let row_ptr' = Array.map (fun x -> min x edges) row_ptr in
      let out_deg = Array.make n 0 in
      Array.iter (fun c -> out_deg.(c) <- Stdlib.( + ) out_deg.(c) 1) cols';
      [
        ("row_ptr", Host.I row_ptr');
        ("cols", Host.I cols');
        ("out_deg", Host.I out_deg);
        ("pr", Host.F (Array.make n (1. /. float_of_int n)));
      ])
    prog
