(** Hand-optimised baselines ("Manual" in paper Figure 12).

    Most Rodinia reference kernels correspond to a fixed hand-picked
    geometry of the same computation, which we reproduce by forcing the
    mapping (including Gaussian's documented mis-assignment of rows to
    dimension x, which our analysis fixes automatically, and BFS's
    top-level-only parallelisation). Pathfinder and LUD are genuinely
    different programs — iteration-fused shared-memory kernels written
    directly in kernel IR — reproducing the optimisation the compiler
    deliberately does not infer (Section VI-C).

    Every manual run returns the simulated time and final buffers so the
    harness can validate it against the CPU oracle like any other run. *)

type result = { seconds : float; data : Ppat_ir.Host.data }

val fixed :
  ?opts:Ppat_codegen.Lower.options ->
  Ppat_gpu.Device.t ->
  (string -> Ppat_core.Mapping.t option) ->
  App.t ->
  Ppat_ir.Host.data ->
  result
(** Run an app's own program under hand-picked mappings, keyed by top-level
    pattern label ([None] falls back to the automatic mapping). *)

val nearest_neighbor : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
val gaussian : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
(** Rodinia geometry: Fan1 on 256-thread 1D blocks; Fan2 as a 16x16 grid
    with {e rows} on dimension x — the uncoalesced hand-written choice the
    paper calls out (Section VI-C). *)

val hotspot : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
val mandelbrot : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
val srad : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
val bfs : Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
(** The Rodinia BFS kernel only exploits node-level parallelism: identical
    to the 1D strategy (Section VI-C). *)

val pathfinder :
  ?pyramid:int -> Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
(** Iteration-fused DP: [pyramid] rows per kernel launch, neighbours kept
    in shared memory with halo columns (default 8). The final row lands in
    buffer ["prev"], like the reference program. *)

val lud :
  ?tile:int -> Ppat_gpu.Device.t -> App.t -> Ppat_ir.Host.data -> result
(** Blocked LU: per 16x16 diagonal tile, a diagonal kernel, one perimeter
    kernel over the remaining row/column tiles and one internal kernel over
    the trailing submatrix, all operating on shared-memory tiles. Requires
    N to be a multiple of [tile]. *)
