(** Rodinia Hotspot: iterative 5-point stencil thermal simulation over a
    2D grid, ping-ponging between two temperature buffers. A two-level
    Foreach nest per time step; (R)/(C) control the traversal order
    (Figures 12, 13). *)

type order = R | C

val app : ?n:int -> ?steps:int -> order -> App.t
