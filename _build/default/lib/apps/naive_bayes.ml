open Ppat_ir
open Exp.Infix

let app ?(docs = 2048) ?(words = 1024) () =
  let b = Builder.create () in
  let doc_totals =
    Builder.map b ~label:"doc_totals" ~size:(Pat.Sparam "DOCS") (fun d ->
        let s =
          Builder.reduce b ~label:"words_in_doc" ~size:(Pat.Sparam "WORDS")
            (fun w -> ([], read "counts" [ d; w ]))
        in
        ([ Builder.bind "s" s ], v "s"))
  in
  let word_mass label cls =
    Builder.map b ~label ~size:(Pat.Sparam "WORDS") (fun w ->
        let s =
          Builder.reduce b ~label:(label ^ "_docs") ~size:(Pat.Sparam "DOCS")
            (fun d ->
              ( [],
                select
                  (read "labels" [ d ] = i cls)
                  (read "counts" [ d; w ])
                  (f 0.) ))
        in
        ([ Builder.bind "s" s ], v "s"))
  in
  let by_class =
    Builder.group_by b ~label:"docs_by_class" ~size:(Pat.Sparam "DOCS")
      ~num_keys:(Ty.Const 2)
      ~key:(fun d -> read "labels" [ d ])
      (fun d -> read "totals" [ d ])
  in
  let prog =
    {
      Pat.pname = "naive_bayes";
      defaults = [ ("DOCS", docs); ("WORDS", words) ];
      buffers =
        [
          Pat.buffer "counts" Ty.F64 [ Ty.Param "DOCS"; Ty.Param "WORDS" ]
            Pat.Input;
          Pat.buffer "labels" Ty.I32 [ Ty.Param "DOCS" ] Pat.Input;
          Pat.buffer "totals" Ty.F64 [ Ty.Param "DOCS" ] Pat.Output;
          Pat.buffer "spam_mass" Ty.F64 [ Ty.Param "WORDS" ] Pat.Output;
          Pat.buffer "ham_mass" Ty.F64 [ Ty.Param "WORDS" ] Pat.Output;
          Pat.buffer "grouped" Ty.F64 [ Ty.Param "DOCS" ] Pat.Output;
          Pat.buffer "grouped_counts" Ty.I32 [ Ty.Const 2 ] Pat.Output;
          Pat.buffer "grouped_offsets" Ty.I32 [ Ty.Const 2 ] Pat.Output;
        ];
      steps =
        [
          Pat.Launch { bind = Some "totals"; pat = doc_totals };
          Pat.Launch { bind = Some "spam_mass"; pat = word_mass "spam" 1 };
          Pat.Launch { bind = Some "ham_mass"; pat = word_mass "ham" 0 };
          Pat.Launch { bind = Some "grouped"; pat = by_class };
        ];
    }
  in
  App.make ~name:"NaiveBayes" ~unordered:[ "grouped" ]
    ~gen:(fun params ->
      let d = List.assoc "DOCS" params and w = List.assoc "WORDS" params in
      [
        ("counts",
         Host.F
           (Array.map Float.round
              (Workloads.farray ~lo:0. ~hi:4. ~seed:111 (Stdlib.( * ) d w))));
        ("labels", Host.I (Workloads.iarray ~seed:112 ~bound:2 d));
      ])
    prog
