(** PageRank over a CSR graph — the paper's motivating nested-pattern
    example (Figure 5): for each node, gather the neighbours' weighted
    ranks (inner pattern over a dynamic-degree edge list) and combine with
    the damping term. Runs a fixed number of power iterations. *)

val app : ?nodes:int -> ?avg_degree:int -> ?iters:int -> unit -> App.t
