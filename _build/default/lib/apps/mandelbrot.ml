open Ppat_ir
open Exp.Infix

type order = R | C

(* out[y, x] = escape iteration count of c = (x0 + x*dx, y0 + y*dy) *)
let pixel_body y x =
  [
    Pat.Let ("cx", f (-2.0) + (i2f x * (f 2.8 / i2f (p "W"))));
    Pat.Let ("cy", f (-1.2) + (i2f y * (f 2.4 / i2f (p "H"))));
    Pat.Let ("zx", f 0.);
    Pat.Let ("zy", f 0.);
    Pat.Let ("it", i 0);
    Pat.While
      ( v "it" < p "MAXIT"
        && (v "zx" * v "zx") + (v "zy" * v "zy") <= f 4.,
        [
          Pat.Let ("tx", (v "zx" * v "zx") - (v "zy" * v "zy") + v "cx");
          Pat.Assign ("zy", (f 2. * v "zx" * v "zy") + v "cy");
          Pat.Assign ("zx", v "tx");
          Pat.Assign ("it", v "it" + i 1);
        ] );
    Pat.Store ("out", [ y; x ], v "it");
  ]

let app ?(h = 256) ?(w = 256) ?(max_iter = 64) order =
  let b = Builder.create () in
  let top =
    match order with
    | R ->
      Builder.foreach b ~label:"mandel_rows" ~size:(Pat.Sparam "H") (fun y ->
          [
            Builder.nest
              (Builder.foreach b ~label:"cols" ~size:(Pat.Sparam "W")
                 (fun x -> pixel_body y x));
          ])
    | C ->
      Builder.foreach b ~label:"mandel_cols" ~size:(Pat.Sparam "W") (fun x ->
          [
            Builder.nest
              (Builder.foreach b ~label:"rows" ~size:(Pat.Sparam "H")
                 (fun y -> pixel_body y x));
          ])
  in
  let prog =
    {
      Pat.pname =
        (match order with R -> "mandelbrot_r" | C -> "mandelbrot_c");
      defaults = [ ("H", h); ("W", w); ("MAXIT", max_iter) ];
      buffers =
        [
          Pat.buffer "out" Ty.I32 [ Ty.Param "H"; Ty.Param "W" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = None; pat = top } ];
    }
  in
  App.make
    ~name:(match order with R -> "Mandelbrot (R)" | C -> "Mandelbrot (C)")
    ~gen:(fun _ -> [])
    prog
