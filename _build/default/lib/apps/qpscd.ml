open Ppat_ir
open Exp.Infix

(* [samples] coordinates are visited per sweep, out of the [dim]
   coordinates of the QP (samples <= dim) *)
let app ?(samples = 2048) ?(dim = 2048) () =
  if Stdlib.( > ) samples dim then invalid_arg "qpscd: samples > dim";
  let b = Builder.create () in
  (* one HogWild sweep: for each (randomly permuted) row r, compute the
     gradient of coordinate r and write the projected update *)
  let top =
    Builder.foreach b ~label:"qpscd_sweep" ~size:(Pat.Sparam "S") (fun s ->
        let dot =
          Builder.reduce b ~label:"row_dot" ~size:(Pat.Sparam "K") (fun j ->
              ([], read "qmat" [ v "r"; j ] * read "x" [ j ]))
        in
        [
          Pat.Let ("r", read "perm" [ s ]);
          Builder.bind "dot" dot;
          Pat.Let ("grad", v "dot" - read "rhs" [ v "r" ]);
          Pat.Let
            ( "step",
              v "grad" / max_ (f 1e-9) (read "qmat" [ v "r"; v "r" ]) );
          (* box projection of the updated coordinate into [0, 1] *)
          Pat.Store
            ( "xnew",
              [ v "r" ],
              max_ (f 0.) (min_ (f 1.) (read "x" [ v "r" ] - v "step")) );
        ])
  in
  let prog =
    {
      Pat.pname = "qpscd";
      defaults = [ ("S", samples); ("K", dim) ];
      buffers =
        [
          Pat.buffer "qmat" Ty.F64 [ Ty.Param "K"; Ty.Param "K" ] Pat.Input;
          Pat.buffer "x" Ty.F64 [ Ty.Param "K" ] Pat.Input;
          Pat.buffer "rhs" Ty.F64 [ Ty.Param "K" ] Pat.Input;
          Pat.buffer "perm" Ty.I32 [ Ty.Param "K" ] Pat.Input;
          Pat.buffer "xnew" Ty.F64 [ Ty.Param "K" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = None; pat = top } ];
    }
  in
  App.make ~name:"QPSCD HogWild"
    ~gen:(fun params ->
      let k = List.assoc "K" params in
      [
        ("qmat", Host.F (Workloads.farray ~seed:91 (Stdlib.( * ) k k)));
        ("x", Host.F (Workloads.farray ~seed:92 k));
        ("rhs", Host.F (Workloads.farray ~seed:93 k));
        ("perm", Host.I (Workloads.permutation ~seed:94 k));
      ])
    prog
