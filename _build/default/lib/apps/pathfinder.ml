open Ppat_ir
open Exp.Infix

let app ?(rows = 64) ?(cols = 16384) () =
  let b = Builder.create () in
  let top =
    Builder.foreach b ~label:"pathfinder_step" ~size:(Pat.Sparam "C")
      (fun j ->
        let left = read "prev" [ max_ (i 0) (j - i 1) ] in
        let mid = read "prev" [ j ] in
        let right = read "prev" [ min_ (p "CM1") (j + i 1) ] in
        [
          Pat.Store
            ( "next",
              [ j ],
              read "wall" [ p "t"; j ] + min_ (min_ left mid) right );
        ])
  in
  let prog =
    {
      Pat.pname = "pathfinder";
      defaults = [ ("R", rows); ("C", cols); ("CM1", Stdlib.( - ) cols 1) ];
      buffers =
        [
          Pat.buffer "wall" Ty.F64 [ Ty.Param "R"; Ty.Param "C" ] Pat.Input;
          Pat.buffer "prev" Ty.F64 [ Ty.Param "C" ] Pat.Input;
          Pat.buffer "next" Ty.F64 [ Ty.Param "C" ] Pat.Output;
        ];
      steps =
        [
          Pat.Host_loop
            {
              var = "t";
              count = Ty.Param "R";
              body =
                [
                  Pat.Launch { bind = None; pat = top };
                  Pat.Swap ("prev", "next");
                ];
            };
        ];
    }
  in
  App.make ~name:"Pathfinder"
    ~gen:(fun params ->
      let r = List.assoc "R" params and c = List.assoc "C" params in
      [
        ("wall", Host.F (Workloads.farray ~lo:1. ~hi:10. ~seed:41 (Stdlib.( * ) r c)));
        ("prev", Host.F (Array.make c 0.));
      ])
    prog
