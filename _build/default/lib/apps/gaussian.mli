(** Rodinia Gaussian Elimination: per step t, Fan1 computes the multiplier
    column m(i) = a(i,t)/a(t,t) and Fan2 subtracts m(i) x row t from every
    remaining row (plus the right-hand side). Fan1's column read cannot
    coalesce; Fan2 is the two-level nest whose dimension assignment the
    analysis must get right — the hand-written Rodinia kernel places rows
    on dimension x and loses (Section VI-C). *)

type order = R | C

val app : ?n:int -> ?steps:int -> order -> App.t
(** [steps] limits the number of elimination steps (defaults to n-1);
    the experiments use a prefix of a large matrix so per-kernel work,
    not launch overhead, dominates — as at the paper's full sizes. *)
