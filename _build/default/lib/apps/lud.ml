open Ppat_ir
open Exp.Infix

type order = R | C

let update_cell ii jj =
  [
    Pat.Store
      ( "a",
        [ p "t" + i 1 + ii; p "t" + i 1 + jj ],
        read "a" [ p "t" + i 1 + ii; p "t" + i 1 + jj ]
        - (read "a" [ p "t" + i 1 + ii; p "t" ]
           * read "a" [ p "t"; p "t" + i 1 + jj ]) );
  ]

let app ?(n = 512) ?steps order =
  let b = Builder.create () in
  let rem = Pat.Sexp (p "N" - p "t" - i 1) in
  let scale =
    Builder.foreach b ~label:"lud_scale" ~size:rem (fun ii ->
        [
          Pat.Store
            ( "a",
              [ p "t" + i 1 + ii; p "t" ],
              read "a" [ p "t" + i 1 + ii; p "t" ]
              / read "a" [ p "t"; p "t" ] );
        ])
  in
  let update =
    match order with
    | R ->
      Builder.foreach b ~label:"lud_update_r" ~size:rem (fun ii ->
          [
            Builder.nest
              (Builder.foreach b ~label:"cols" ~size:rem (fun jj ->
                   update_cell ii jj));
          ])
    | C ->
      Builder.foreach b ~label:"lud_update_c" ~size:rem (fun jj ->
          [
            Builder.nest
              (Builder.foreach b ~label:"rows" ~size:rem (fun ii ->
                   update_cell ii jj));
          ])
  in
  let prog =
    {
      Pat.pname = (match order with R -> "lud_r" | C -> "lud_c");
      defaults =
        [
          ("N", n);
          ( "STEPS",
            match steps with
            | Some s -> min s (Stdlib.( - ) n 1)
            | None -> Stdlib.( - ) n 1 );
        ];
      buffers =
        [ Pat.buffer "a" Ty.F64 [ Ty.Param "N"; Ty.Param "N" ] Pat.Input ];
      steps =
        [
          Pat.Host_loop
            {
              var = "t";
              count = Ty.Param "STEPS";
              body =
                [
                  Pat.Launch { bind = None; pat = scale };
                  Pat.Launch { bind = None; pat = update };
                ];
            };
        ];
    }
  in
  App.make
    ~name:(match order with R -> "LUD (R)" | C -> "LUD (C)")
    ~eps:1e-4
    ~gen:(fun params ->
      let n = List.assoc "N" params in
      [ ("a", Host.F (Workloads.spd_matrix ~seed:71 n)) ])
    prog
