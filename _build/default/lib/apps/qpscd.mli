(** QPSCD HogWild!: a lock-free stochastic coordinate-descent step of a
    box-constrained quadratic program (paper Section VI-E, after Niu et
    al.). The outer pattern visits rows in a random permutation (its memory
    accesses are non-affine, so no coalescing constraint exists at that
    level), while the inner pattern walks a dense row sequentially —
    MultiDim puts the inner pattern on dimension x; a 1D mapping issues
    uncoalesced row-gathers and loses even to the CPU, as in Figure 14. *)

val app : ?samples:int -> ?dim:int -> unit -> App.t
