(** Dense matrix multiply C = A x B as a three-level nest: rows x cols x a
    dot-product reduction. A textbook stress test for the analysis: the
    k-level is contiguous in A, the j-level is contiguous in B and C, so
    the search must trade the reduction's coalescing against the output's
    (B and C win on weight, as a human would choose), and ControlDOP keeps
    the k-level lean. Not part of the paper's benchmark set — included as
    an extension exercising the three-dimensional mapping space. *)

val app : ?m:int -> ?n:int -> ?k:int -> unit -> App.t
