(** Naive Bayes spam training (paper Section VI-E): over a document-by-word
    count matrix, compute (1) words per document — row reductions — and
    (2) per-word occurrence mass in spam and in ham documents — column
    reductions over the same matrix. The two kernels need {e opposite}
    dimension assignments on the same data; a fixed 1D mapping can only
    coalesce one of them while the analysis flips dimensions per kernel
    (Section VI-E). A Group_by of documents by class exercises the
    remaining Table I pattern. *)

val app : ?docs:int -> ?words:int -> unit -> App.t
