(** Rodinia Pathfinder: dynamic programming over a grid — each step
    computes, for every column, the running minimum path cost from the
    previous row's three neighbours. One level of parallelism per step,
    launched once per row; the hand-optimised Rodinia code instead fuses
    several rows per kernel through shared memory (the "pyramid"), which is
    the optimisation our compiler deliberately does not infer
    (Section VI-C) — reproduced by the manual kernel in
    {!Manual_kernels}. *)

val app : ?rows:int -> ?cols:int -> unit -> App.t
