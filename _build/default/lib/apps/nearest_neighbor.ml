open Ppat_ir
open Exp.Infix

let app ?(n = 65536) () =
  let b = Builder.create () in
  (* target point, fixed in the kernel like Rodinia's lat/lng arguments *)
  let plat = f 30. and plng = f 52. in
  let top =
    Builder.map b ~label:"nn" ~size:(Pat.Sparam "N") (fun i ->
        let dx = read "lat" [ i ] - plat and dy = read "lng" [ i ] - plng in
        ( [ Pat.Let ("dx", dx); Pat.Let ("dy", dy) ],
          sqrt_ ((v "dx" * v "dx") + (v "dy" * v "dy")) ))
  in
  let prog =
    {
      Pat.pname = "nearest_neighbor";
      defaults = [ ("N", n) ];
      buffers =
        [
          Pat.buffer "lat" Ty.F64 [ Ty.Param "N" ] Pat.Input;
          Pat.buffer "lng" Ty.F64 [ Ty.Param "N" ] Pat.Input;
          Pat.buffer "dist" Ty.F64 [ Ty.Param "N" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = Some "dist"; pat = top } ];
    }
  in
  App.make ~name:"NearestNeighbor"
    ~gen:(fun params ->
      let n = List.assoc "N" params in
      [
        ("lat", Host.F (Workloads.farray ~lo:0. ~hi:60. ~seed:21 n));
        ("lng", Host.F (Workloads.farray ~lo:0. ~hi:120. ~seed:22 n));
      ])
    prog
