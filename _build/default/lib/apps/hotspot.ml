open Ppat_ir
open Exp.Infix

type order = R | C

(* clamped neighbour read *)
let at r c = read "t_in" [ max_ (i 0) (min_ (p "NM1") r); max_ (i 0) (min_ (p "NM1") c) ]

let cell_body r c =
  [
    Pat.Let ("center", read "t_in" [ r; c ]);
    Pat.Let ("acc",
             at (r - i 1) c + at (r + i 1) c + at r (c - i 1) + at r (c + i 1)
             - (f 4. * v "center"));
    Pat.Store
      ( "t_out",
        [ r; c ],
        v "center" + (f 0.2 * v "acc") + (f 0.05 * read "power" [ r; c ]) );
  ]

let app ?(n = 512) ?(steps = 4) order =
  let b = Builder.create () in
  let top =
    match order with
    | R ->
      Builder.foreach b ~label:"hotspot_rows" ~size:(Pat.Sparam "N") (fun r ->
          [
            Builder.nest
              (Builder.foreach b ~label:"cols" ~size:(Pat.Sparam "N")
                 (fun c -> cell_body r c));
          ])
    | C ->
      Builder.foreach b ~label:"hotspot_cols" ~size:(Pat.Sparam "N") (fun c ->
          [
            Builder.nest
              (Builder.foreach b ~label:"rows" ~size:(Pat.Sparam "N")
                 (fun r -> cell_body r c));
          ])
  in
  let prog =
    {
      Pat.pname = (match order with R -> "hotspot_r" | C -> "hotspot_c");
      defaults = [ ("N", n); ("NM1", Stdlib.( - ) n 1); ("STEPS", steps) ];
      buffers =
        [
          Pat.buffer "t_in" Ty.F64 [ Ty.Param "N"; Ty.Param "N" ] Pat.Input;
          Pat.buffer "power" Ty.F64 [ Ty.Param "N"; Ty.Param "N" ] Pat.Input;
          Pat.buffer "t_out" Ty.F64 [ Ty.Param "N"; Ty.Param "N" ] Pat.Output;
        ];
      steps =
        [
          Pat.Host_loop
            {
              var = "step";
              count = Ty.Param "STEPS";
              body =
                [
                  Pat.Launch { bind = None; pat = top };
                  Pat.Swap ("t_in", "t_out");
                ];
            };
        ];
    }
  in
  App.make
    ~name:(match order with R -> "Hotspot (R)" | C -> "Hotspot (C)")
    ~gen:(fun params ->
      let n = List.assoc "N" params in
      [
        ("t_in", Host.F (Workloads.farray ~lo:300. ~hi:340. ~seed:31 (Stdlib.( * ) n n)));
        ("power", Host.F (Workloads.farray ~lo:0. ~hi:1. ~seed:32 (Stdlib.( * ) n n)));
      ])
    prog
