open Ppat_ir
open Exp.Infix

type order = R | C

let fan2_cell ii jj =
  (* update a[t+1+ii, t+jj] and, once per row, the right-hand side *)
  [
    Pat.Store
      ( "a",
        [ p "t" + i 1 + ii; p "t" + jj ],
        read "a" [ p "t" + i 1 + ii; p "t" + jj ]
        - (read "mult" [ ii ] * read "a" [ p "t"; p "t" + jj ]) );
    Pat.If
      ( jj = i 0,
        [
          Pat.Store
            ( "rhs",
              [ p "t" + i 1 + ii ],
              read "rhs" [ p "t" + i 1 + ii ]
              - (read "mult" [ ii ] * read "rhs" [ p "t" ]) );
        ],
        [] );
  ]

let app ?(n = 512) ?steps order =
  let b = Builder.create () in
  let rem = Pat.Sexp (p "N" - p "t" - i 1) in
  let cols = Pat.Sexp (p "N" - p "t") in
  let fan1 =
    Builder.map b ~label:"fan1" ~size:rem (fun ii ->
        ([], read "a" [ p "t" + i 1 + ii; p "t" ] / read "a" [ p "t"; p "t" ]))
  in
  let fan2 =
    match order with
    | R ->
      Builder.foreach b ~label:"fan2_r" ~size:rem (fun ii ->
          [
            Builder.nest
              (Builder.foreach b ~label:"cols" ~size:cols (fun jj ->
                   fan2_cell ii jj));
          ])
    | C ->
      Builder.foreach b ~label:"fan2_c" ~size:cols (fun jj ->
          [
            Builder.nest
              (Builder.foreach b ~label:"rows" ~size:rem (fun ii ->
                   fan2_cell ii jj));
          ])
  in
  let prog =
    {
      Pat.pname = (match order with R -> "gaussian_r" | C -> "gaussian_c");
      defaults =
        [
          ("N", n);
          ( "STEPS",
            match steps with
            | Some s -> min s (Stdlib.( - ) n 1)
            | None -> Stdlib.( - ) n 1 );
        ];
      buffers =
        [
          Pat.buffer "a" Ty.F64 [ Ty.Param "N"; Ty.Param "N" ] Pat.Input;
          Pat.buffer "rhs" Ty.F64 [ Ty.Param "N" ] Pat.Input;
          Pat.buffer "mult" Ty.F64 [ Ty.Param "N" ] Pat.Output;
        ];
      steps =
        [
          Pat.Host_loop
            {
              var = "t";
              count = Ty.Param "STEPS";
              body =
                [
                  Pat.Launch { bind = Some "mult"; pat = fan1 };
                  Pat.Launch { bind = None; pat = fan2 };
                ];
            };
        ];
    }
  in
  App.make
    ~name:(match order with R -> "Gaussian (R)" | C -> "Gaussian (C)")
    ~eps:1e-5
    ~gen:(fun params ->
      let n = List.assoc "N" params in
      [
        ("a", Host.F (Workloads.spd_matrix ~seed:51 n));
        ("rhs", Host.F (Workloads.farray ~seed:52 n));
      ])
    prog
