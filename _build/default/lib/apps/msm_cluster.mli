(** MSMBuilder trajectory clustering (paper Section VI-E): assign each
    trajectory frame to its nearest cluster centre under squared Euclidean
    distance. A genuinely three-level nest — frames x centres x
    coordinates — where both inner domains are small (around 100 in the
    paper), so a 1D mapping drastically under-utilises the GPU while the
    analysis exploits the product of all three levels (one logical
    dimension per level, Section IV-B "only needs to add one more logical
    dimension"). *)

val app : ?frames:int -> ?centers:int -> ?dims:int -> unit -> App.t
