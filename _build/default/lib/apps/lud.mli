(** Rodinia LUD: in-place LU decomposition (Doolittle, no pivoting). The
    generated version launches a column-scale kernel and a rank-1 trailing
    update per step; the Rodinia hand-written version is {e blocked} —
    diagonal / perimeter / internal kernels with shared-memory tiles,
    processing 16 steps per round — which our compiler deliberately does
    not infer (Section VI-C); see {!Manual_kernels.lud}. *)

type order = R | C

val app : ?n:int -> ?steps:int -> order -> App.t
(** [steps] limits the elimination steps (defaults to n-1; the blocked
    manual kernel requires it to be a multiple of its tile size). *)
