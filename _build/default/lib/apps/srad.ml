open Ppat_ir
open Exp.Infix

type order = R | C

let clamp lo hi x = max_ lo (min_ hi x)

(* flat index of (r, c) in the N x N image *)
let fl r c = (r * p "N") + c

let jat r c = read "image" [ fl (clamp (i 0) (p "NM1") r) (clamp (i 0) (p "NM1") c) ]

let coef_cell r c =
  [
    Pat.Let ("jc", read "image" [ fl r c ]);
    Pat.Let ("dN", jat (r - i 1) c - v "jc");
    Pat.Let ("dS", jat (r + i 1) c - v "jc");
    Pat.Let ("dW", jat r (c - i 1) - v "jc");
    Pat.Let ("dE", jat r (c + i 1) - v "jc");
    Pat.Let
      ( "g2",
        ((v "dN" * v "dN") + (v "dS" * v "dS") + (v "dW" * v "dW")
         + (v "dE" * v "dE"))
        / (v "jc" * v "jc") );
    Pat.Let ("l", (v "dN" + v "dS" + v "dW" + v "dE") / v "jc");
    Pat.Let ("num", (f 0.5 * v "g2") - (f 0.0625 * v "l" * v "l"));
    Pat.Let ("den", f 1. + (f 0.25 * v "l"));
    Pat.Let ("qsqr", v "num" / (v "den" * v "den"));
    Pat.Let ("mean", read "sumj" [ i 0 ] / i2f (p "N2"));
    Pat.Let
      ("varj", (read "sumj2" [ i 0 ] / i2f (p "N2")) - (v "mean" * v "mean"));
    Pat.Let ("q0sqr", v "varj" / (v "mean" * v "mean"));
    Pat.Let
      ( "cval",
        f 1.
        / (f 1. + ((v "qsqr" - v "q0sqr") / (v "q0sqr" * (f 1. + v "q0sqr"))))
      );
    Pat.Store ("coef", [ fl r c ], max_ (f 0.) (min_ (f 1.) (v "cval")));
  ]

let cat r c = read "coef" [ fl (clamp (i 0) (p "NM1") r) (clamp (i 0) (p "NM1") c) ]

let update_cell r c =
  [
    Pat.Let ("jc", read "image" [ fl r c ]);
    Pat.Let ("dN", jat (r - i 1) c - v "jc");
    Pat.Let ("dS", jat (r + i 1) c - v "jc");
    Pat.Let ("dW", jat r (c - i 1) - v "jc");
    Pat.Let ("dE", jat r (c + i 1) - v "jc");
    Pat.Let
      ( "div",
        (cat (r + i 1) c * v "dS") + (cat r c * v "dN")
        + (cat r (c + i 1) * v "dE") + (cat r c * v "dW") );
    Pat.Store ("next", [ fl r c ], v "jc" + (f 0.125 * v "div"));
  ]

let nest2 b label order cell =
  match order with
  | R ->
    Builder.foreach b ~label:(label ^ "_r") ~size:(Pat.Sparam "N") (fun r ->
        [
          Builder.nest
            (Builder.foreach b ~label:"cols" ~size:(Pat.Sparam "N") (fun c ->
                 cell r c));
        ])
  | C ->
    Builder.foreach b ~label:(label ^ "_c") ~size:(Pat.Sparam "N") (fun c ->
        [
          Builder.nest
            (Builder.foreach b ~label:"rows" ~size:(Pat.Sparam "N") (fun r ->
                 cell r c));
        ])

let app ?(n = 256) ?(iters = 2) order =
  let b = Builder.create () in
  let sumj =
    Builder.reduce b ~label:"stat_sum" ~size:(Pat.Sparam "N2") (fun k ->
        ([], read "image" [ k ]))
  in
  let sumj2 =
    Builder.reduce b ~label:"stat_sum2" ~size:(Pat.Sparam "N2") (fun k ->
        ([], read "image" [ k ] * read "image" [ k ]))
  in
  let coef = nest2 b "srad_coef" order coef_cell in
  let update = nest2 b "srad_update" order update_cell in
  let prog =
    {
      Pat.pname = (match order with R -> "srad_r" | C -> "srad_c");
      defaults =
        [
          ("N", n);
          ("NM1", Stdlib.( - ) n 1);
          ("N2", Stdlib.( * ) n n);
          ("ITERS", iters);
        ];
      buffers =
        [
          Pat.buffer "image" Ty.F64 [ Ty.Param "N2" ] Pat.Input;
          Pat.buffer "coef" Ty.F64 [ Ty.Param "N2" ] Pat.Temp;
          Pat.buffer "next" Ty.F64 [ Ty.Param "N2" ] Pat.Temp;
          Pat.buffer "sumj" Ty.F64 [ Ty.Const 1 ] Pat.Temp;
          Pat.buffer "sumj2" Ty.F64 [ Ty.Const 1 ] Pat.Temp;
        ];
      steps =
        [
          Pat.Host_loop
            {
              var = "iter";
              count = Ty.Param "ITERS";
              body =
                [
                  Pat.Launch { bind = Some "sumj"; pat = sumj };
                  Pat.Launch { bind = Some "sumj2"; pat = sumj2 };
                  Pat.Launch { bind = None; pat = coef };
                  Pat.Launch { bind = None; pat = update };
                  Pat.Swap ("image", "next");
                ];
            };
        ];
    }
  in
  App.make
    ~name:(match order with R -> "Srad (R)" | C -> "Srad (C)")
    ~eps:1e-5
    ~gen:(fun params ->
      let n2 = List.assoc "N2" params in
      [ ("image", Host.F (Workloads.farray ~lo:1. ~hi:2. ~seed:61 n2)) ])
    prog
