open Ppat_ir
module M = Ppat_core.Mapping
module Strategy = Ppat_core.Strategy
module Collect = Ppat_core.Collect
module Kir = Ppat_kernel.Kir
module Interp = Ppat_kernel.Interp
module Memory = Ppat_gpu.Memory
module Timing = Ppat_gpu.Timing
module Runner = Ppat_harness.Runner

type result = { seconds : float; data : Host.data }

(* ----- fixed-geometry manuals: the app's own program under hand-picked
   mappings ----- *)

let fixed ?opts dev pick (app : App.t) data =
  let prog = app.prog in
  let ap = Runner.analysis_params prog app.params in
  (* per top-level pattern: hand mapping if given, else the auto decision *)
  let decisions = ref [] in
  let rec step = function
    | Pat.Launch n ->
      if not (List.mem_assoc n.pat.Pat.pid !decisions) then begin
        let c = Collect.collect ~params:ap ?bind:n.bind dev prog n.pat in
        let strat =
          match pick n.pat.Pat.label with
          | Some m -> Strategy.Fixed m
          | None -> Strategy.Auto
        in
        decisions :=
          (n.pat.Pat.pid, (Strategy.decide dev c strat).Strategy.mapping)
          :: !decisions
      end
    | Pat.Host_loop { body; _ } | Pat.While_flag { body; _ } ->
      List.iter step body
    | Pat.Swap _ -> ()
  in
  List.iter step prog.steps;
  let r =
    Runner.run_gpu_mapped ?opts ~params:app.params dev prog
      (fun pid -> List.assoc pid !decisions)
      data
  in
  { seconds = r.seconds; data = r.data }

let d dim bsize span = { M.dim; bsize; span }
let sp1 = M.span1

let nearest_neighbor dev app data =
  fixed dev (fun _ -> Some [| d M.X 256 sp1 |]) app data

let gaussian dev app data =
  let pick = function
    | "fan1" -> Some [| d M.X 256 sp1 |]
    (* the hand-written Fan2 puts rows on x: uncoalesced on row-major a *)
    | "fan2_r" -> Some [| d M.X 16 sp1; d M.Y 16 sp1 |]
    | "fan2_c" -> Some [| d M.Y 16 sp1; d M.X 16 sp1 |]
    | _ -> None
  in
  fixed dev pick app data

let hotspot dev app data =
  let pick = function
    | "hotspot_rows" -> Some [| d M.Y 16 sp1; d M.X 16 sp1 |]
    | "hotspot_cols" -> Some [| d M.X 16 sp1; d M.Y 16 sp1 |]
    | _ -> None
  in
  fixed dev pick app data

let mandelbrot dev app data =
  let pick = function
    | "mandel_rows" -> Some [| d M.Y 16 sp1; d M.X 16 sp1 |]
    | "mandel_cols" -> Some [| d M.X 16 sp1; d M.Y 16 sp1 |]
    | _ -> None
  in
  fixed dev pick app data

let srad dev (app : App.t) data =
  let pick = function
    | "stat_sum" | "stat_sum2" ->
      (* hand-written reductions are well tuned; use the analysis pick *)
      None
    | "srad_coef_r" | "srad_update_r" ->
      Some [| d M.Y 16 sp1; d M.X 16 sp1 |]
    | "srad_coef_c" | "srad_update_c" ->
      Some [| d M.X 16 sp1; d M.Y 16 sp1 |]
    | _ -> None
  in
  fixed dev pick app data

let bfs dev (app : App.t) data =
  let r = Runner.run_gpu ~params:app.params dev app.prog Strategy.One_d data in
  { seconds = r.seconds; data = r.data }

(* ----- helpers for hand-written kernel IR ----- *)

let ik n = Kir.Int n
let ( +: ) a b = Kir.Bin (Exp.Add, a, b)
let ( -: ) a b = Kir.Bin (Exp.Sub, a, b)
let ( *: ) a b = Kir.Bin (Exp.Mul, a, b)
let ( /: ) a b = Kir.Bin (Exp.Div, a, b)
let ( <: ) a b = Kir.Cmp (Exp.Lt, a, b)
let ( >=: ) a b = Kir.Cmp (Exp.Ge, a, b)
let ( =: ) a b = Kir.Cmp (Exp.Eq, a, b)
let ( >: ) a b = Kir.Cmp (Exp.Gt, a, b)
let andk a b = Kir.Bin (Exp.And, a, b)
let mink a b = Kir.Bin (Exp.Min, a, b)
let maxk a b = Kir.Bin (Exp.Max, a, b)
let tx = Kir.Tid Kir.X
let ty = Kir.Tid Kir.Y
let bx = Kir.Bid Kir.X
let cdiv a b = (a + b - 1) / b

(* run a list of launches against memory, accumulating simulated time *)
let run_launches dev mem launches =
  List.fold_left
    (fun acc (l : Kir.launch) ->
      let s = Interp.run dev mem l in
      acc +. Timing.kernel_seconds dev (Kir.geometry l) s)
    0. launches

let data_of mem (prog : Pat.prog) =
  List.map (fun (b : Pat.buffer) -> (b.bname, Memory.to_host mem b.bname))
    prog.buffers

(* ----- Pathfinder: iteration-fused pyramid kernel ----- *)

let pathfinder ?(pyramid = 8) dev (app : App.t) data =
  let params = App.resolved_params app in
  let rows = List.assoc "R" params and cols = List.assoc "C" params in
  let tile = 256 in
  let useful = tile - (2 * pyramid) in
  let mem = Memory.create () in
  List.iter (fun (n, b) -> ignore (Memory.load mem n b))
    (Host.alloc_all app.prog params data);
  let rb = Kir.Rb.create () in
  let reg ?(t = Ty.I32) n =
    let r = Kir.Rb.fresh rb n in
    Kir.Rb.set_type rb r t;
    r
  in
  let g = reg "g" and gc = reg "gc" in
  let k = reg "k" in
  let li = reg "li" and ri = reg "ri" in
  let lv = reg ~t:Ty.F64 "lv"
  and rv = reg ~t:Ty.F64 "rv"
  and nv = reg ~t:Ty.F64 "nv" in
  let body =
    [
      Kir.Set (g, (bx *: ik useful) -: ik pyramid +: tx);
      Kir.Set (gc, maxk (ik 0) (mink (ik (cols - 1)) (Kir.Reg g)));
      Kir.Store_s ("s0", tx, Kir.Load_g ("prev", Kir.Reg gc));
      Kir.Sync;
      Kir.For
        {
          reg = k;
          lo = ik 0;
          hi = Kir.Param "P";
          step = ik 1;
          body =
            [
              (* clamped neighbour indices: fall back to self at edges *)
              Kir.Set
                ( li,
                  Kir.Select
                    ( andk (tx >: ik 0) (Kir.Reg g >: ik 0),
                      tx -: ik 1,
                      tx ) );
              Kir.Set
                ( ri,
                  Kir.Select
                    ( andk
                        (tx <: ik (tile - 1))
                        (Kir.Reg g <: ik (cols - 1)),
                      tx +: ik 1,
                      tx ) );
              Kir.Set (lv, Kir.Load_s ("s0", Kir.Reg li));
              Kir.Set (rv, Kir.Load_s ("s0", Kir.Reg ri));
              Kir.Set
                ( nv,
                  Kir.Load_g
                    ( "wall",
                      ((Kir.Param "t0" +: Kir.Reg k) *: ik cols) +: Kir.Reg gc
                    )
                  +: mink (mink (Kir.Reg lv) (Kir.Load_s ("s0", tx)))
                       (Kir.Reg rv) );
              Kir.Store_s ("s1", tx, Kir.Reg nv);
              Kir.Sync;
              Kir.Store_s ("s0", tx, Kir.Load_s ("s1", tx));
              Kir.Sync;
            ];
        };
      Kir.If
        ( andk
            (andk (tx >=: ik pyramid) (tx <: ik (tile - pyramid)))
            (Kir.Reg g <: ik cols),
          [ Kir.Store_g ("next", Kir.Reg g, Kir.Load_s ("s0", tx)) ],
          [] );
    ]
  in
  let kernel =
    {
      Kir.kname = "pathfinder_pyramid";
      nregs = Kir.Rb.count rb;
      reg_names = Kir.Rb.names rb;
      reg_types = Kir.Rb.types rb;
      smem =
        [
          { Kir.sname = "s0"; selem = Ty.F64; selems = tile };
          { Kir.sname = "s1"; selem = Ty.F64; selems = tile };
        ];
      body;
    }
  in
  let time = ref 0. in
  let t0 = ref 0 in
  while !t0 < rows do
    let p = min pyramid (rows - !t0) in
    let launch =
      {
        Kir.kernel;
        grid = (cdiv cols useful, 1, 1);
        block = (tile, 1, 1);
        kparams = [ ("t0", !t0); ("P", p) ];
      }
    in
    time := !time +. run_launches dev mem [ launch ];
    Memory.swap mem "prev" "next";
    t0 := !t0 + p
  done;
  { seconds = !time; data = data_of mem app.prog }

(* ----- LUD: blocked diagonal / perimeter / internal kernels ----- *)

let lud ?(tile = 16) dev (app : App.t) data =
  let params = App.resolved_params app in
  let n = List.assoc "N" params in
  if n mod tile <> 0 then invalid_arg "manual lud: N must be a multiple of tile";
  let b = tile in
  let mem = Memory.create () in
  List.iter (fun (nm, bf) -> ignore (Memory.load mem nm bf))
    (Host.alloc_all app.prog params data);
  let a_at row col = (row *: ik n) +: col in
  let tb = Kir.Param "tb" in
  let make name smem mk_body =
    let rb = Kir.Rb.create () in
    let reg ?(t = Ty.I32) nm =
      let r = Kir.Rb.fresh rb nm in
      Kir.Rb.set_type rb r t;
      r
    in
    let body = mk_body reg in
    {
      Kir.kname = name;
      nregs = Kir.Rb.count rb;
      reg_names = Kir.Rb.names rb;
      reg_types = Kir.Rb.types rb;
      smem;
      body;
    }
  in
  let sm nm = { Kir.sname = nm; selem = Ty.F64; selems = b * b } in
  let lin r c = (r *: ik b) +: c in
  (* per-step k loops are unrolled in OCaml: k is a compile-time constant *)
  let diagonal =
    make "lud_diagonal" [ sm "dt" ] (fun _reg ->
        [
          Kir.Store_s ("dt", lin ty tx, Kir.Load_g ("a", a_at (tb +: ty) (tb +: tx)));
          Kir.Sync;
        ]
        @ List.concat
            (List.init b (fun k ->
                 [
                   Kir.If
                     ( andk (ty >: ik k) (tx =: ik k),
                       [
                         Kir.Store_s
                           ( "dt",
                             lin ty (ik k),
                             Kir.Load_s ("dt", lin ty (ik k))
                             /: Kir.Load_s ("dt", lin (ik k) (ik k)) );
                       ],
                       [] );
                   Kir.Sync;
                   Kir.If
                     ( andk (ty >: ik k) (tx >: ik k),
                       [
                         Kir.Store_s
                           ( "dt",
                             lin ty tx,
                             Kir.Load_s ("dt", lin ty tx)
                             -: (Kir.Load_s ("dt", lin ty (ik k))
                                 *: Kir.Load_s ("dt", lin (ik k) tx)) );
                       ],
                       [] );
                   Kir.Sync;
                 ]))
        @ [ Kir.Store_g ("a", a_at (tb +: ty) (tb +: tx), Kir.Load_s ("dt", lin ty tx)) ])
  in
  let row_perim =
    make "lud_row_perimeter" [ sm "dt"; sm "tt" ] (fun reg ->
        let off = reg "off" in
        [
          Kir.Set (off, tb +: ik b +: (bx *: ik b));
          Kir.Store_s ("dt", lin ty tx, Kir.Load_g ("a", a_at (tb +: ty) (tb +: tx)));
          Kir.Store_s
            ("tt", lin ty tx, Kir.Load_g ("a", a_at (tb +: ty) (Kir.Reg off +: tx)));
          Kir.Sync;
        ]
        @ List.concat
            (List.init b (fun k ->
                 [
                   Kir.If
                     ( ty >: ik k,
                       [
                         Kir.Store_s
                           ( "tt",
                             lin ty tx,
                             Kir.Load_s ("tt", lin ty tx)
                             -: (Kir.Load_s ("dt", lin ty (ik k))
                                 *: Kir.Load_s ("tt", lin (ik k) tx)) );
                       ],
                       [] );
                   Kir.Sync;
                 ]))
        @ [
            Kir.Store_g
              ("a", a_at (tb +: ty) (Kir.Reg off +: tx), Kir.Load_s ("tt", lin ty tx));
          ])
  in
  let col_perim =
    make "lud_col_perimeter" [ sm "dt"; sm "tt" ] (fun reg ->
        let off = reg "off" in
        [
          Kir.Set (off, tb +: ik b +: (bx *: ik b));
          Kir.Store_s ("dt", lin ty tx, Kir.Load_g ("a", a_at (tb +: ty) (tb +: tx)));
          Kir.Store_s
            ("tt", lin ty tx, Kir.Load_g ("a", a_at (Kir.Reg off +: ty) (tb +: tx)));
          Kir.Sync;
        ]
        @ List.concat
            (List.init b (fun k ->
                 [
                   Kir.If
                     ( tx =: ik k,
                       [
                         Kir.Store_s
                           ( "tt",
                             lin ty (ik k),
                             Kir.Load_s ("tt", lin ty (ik k))
                             /: Kir.Load_s ("dt", lin (ik k) (ik k)) );
                       ],
                       [] );
                   Kir.Sync;
                   Kir.If
                     ( tx >: ik k,
                       [
                         Kir.Store_s
                           ( "tt",
                             lin ty tx,
                             Kir.Load_s ("tt", lin ty tx)
                             -: (Kir.Load_s ("tt", lin ty (ik k))
                                 *: Kir.Load_s ("dt", lin (ik k) tx)) );
                       ],
                       [] );
                   Kir.Sync;
                 ]))
        @ [
            Kir.Store_g
              ("a", a_at (Kir.Reg off +: ty) (tb +: tx), Kir.Load_s ("tt", lin ty tx));
          ])
  in
  let internal =
    make "lud_internal" [ sm "cp"; sm "rp" ] (fun reg ->
        let oi = reg "oi" and oj = reg "oj" in
        let acc = reg ~t:Ty.F64 "acc" in
        let k = reg "k" in
        [
          Kir.Set (oi, tb +: ik b +: (Kir.Bid Kir.Y *: ik b));
          Kir.Set (oj, tb +: ik b +: (bx *: ik b));
          Kir.Store_s
            ("cp", lin ty tx, Kir.Load_g ("a", a_at (Kir.Reg oi +: ty) (tb +: tx)));
          Kir.Store_s
            ("rp", lin ty tx, Kir.Load_g ("a", a_at (tb +: ty) (Kir.Reg oj +: tx)));
          Kir.Sync;
          Kir.Set (acc, Kir.Load_g ("a", a_at (Kir.Reg oi +: ty) (Kir.Reg oj +: tx)));
          Kir.For
            {
              reg = k;
              lo = ik 0;
              hi = ik b;
              step = ik 1;
              body =
                [
                  Kir.Set
                    ( acc,
                      Kir.Reg acc
                      -: (Kir.Load_s ("cp", lin ty (Kir.Reg k))
                          *: Kir.Load_s ("rp", lin (Kir.Reg k) tx)) );
                ];
            };
          Kir.Store_g ("a", a_at (Kir.Reg oi +: ty) (Kir.Reg oj +: tx), Kir.Reg acc);
        ]
    )
  in
  let time = ref 0. in
  (* a partial factorisation (STEPS < n-1) must stop on a tile boundary to
     match the per-column generated version; a full run covers all tiles *)
  let lim =
    match List.assoc_opt "STEPS" params with
    | Some s when s < n - 1 ->
      if s mod b <> 0 then
        invalid_arg "manual lud: partial STEPS must be a multiple of tile";
      s
    | _ -> n
  in
  let rounds = lim / b in
  let steps = n / b in
  for s = 0 to rounds - 1 do
    let tb_v = s * b in
    let rem = steps - s - 1 in
    let kp = [ ("tb", tb_v) ] in
    let launch kernel grid =
      { Kir.kernel; grid; block = (b, b, 1); kparams = kp }
    in
    let ls =
      launch diagonal (1, 1, 1)
      ::
      (if rem > 0 then
         [
           launch row_perim (rem, 1, 1);
           launch col_perim (rem, 1, 1);
           launch internal (rem, rem, 1);
         ]
       else [])
    in
    time := !time +. run_launches dev mem ls
  done;
  { seconds = !time; data = data_of mem app.prog }
