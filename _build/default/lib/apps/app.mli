(** Uniform description of a benchmark application: a pattern-IR program
    together with its workload generator and validation policy. The
    experiment harness runs each app through the CPU oracle and the GPU
    simulator under every strategy of interest. *)

type t = {
  name : string;
  prog : Ppat_ir.Pat.prog;
  params : (string * int) list;  (** experiment parameter values *)
  gen : (string * int) list -> Ppat_ir.Host.data;
      (** build input buffers for resolved parameters (deterministic) *)
  unordered : string list;
      (** output buffers whose element order is nondeterministic on the GPU
          (atomic-append filters, group-by values) *)
  eps : float;  (** comparison tolerance against the CPU oracle *)
}

val make :
  ?params:(string * int) list ->
  ?unordered:string list ->
  ?eps:float ->
  name:string ->
  gen:((string * int) list -> Ppat_ir.Host.data) ->
  Ppat_ir.Pat.prog ->
  t

val resolved_params : t -> (string * int) list
(** App params over program defaults. *)

val input_data : t -> Ppat_ir.Host.data
(** Generate the workload for the app's own parameters. *)
