(** Rodinia BFS: level-synchronous breadth-first search over a CSR graph.
    Each round expands the frontier (nodes whose cost equals the current
    level); the inner pattern over a node's neighbours has a {e dynamic}
    size (the row degree), which forces Span(all) on that level — exactly
    the load-imbalance scenario warp-based mapping [Hong et al.] targets,
    which the analysis reproduces. The hand-written Rodinia kernel only
    parallelises the node loop (equal to the 1D strategy), so MultiDim
    beats "Manual" here, as in the paper. *)

val app : ?nodes:int -> ?avg_degree:int -> unit -> App.t
