open Ppat_ir
open Exp.Infix

let app ?(m = 256) ?(n = 256) ?(k = 256) () =
  let b = Builder.create () in
  let top =
    Builder.foreach b ~label:"gemm_rows" ~size:(Pat.Sparam "M") (fun i0 ->
        [
          Builder.nest
            (Builder.foreach b ~label:"cols" ~size:(Pat.Sparam "N") (fun j ->
                 let dot =
                   Builder.reduce b ~label:"dot" ~size:(Pat.Sparam "K")
                     (fun kk ->
                       ([], read "a" [ i0; kk ] * read "bmat" [ kk; j ]))
                 in
                 [
                   Builder.bind "acc" dot;
                   Pat.Store ("c", [ i0; j ], v "acc");
                 ]));
        ])
  in
  let prog =
    {
      Pat.pname = "gemm";
      defaults = [ ("M", m); ("N", n); ("K", k) ];
      buffers =
        [
          Pat.buffer "a" Ty.F64 [ Ty.Param "M"; Ty.Param "K" ] Pat.Input;
          Pat.buffer "bmat" Ty.F64 [ Ty.Param "K"; Ty.Param "N" ] Pat.Input;
          Pat.buffer "c" Ty.F64 [ Ty.Param "M"; Ty.Param "N" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = None; pat = top } ];
    }
  in
  App.make ~name:"GEMM" ~eps:1e-6
    ~gen:(fun params ->
      let m = List.assoc "M" params
      and n = List.assoc "N" params
      and k = List.assoc "K" params in
      [
        ("a", Host.F (Workloads.farray ~seed:151 (Stdlib.( * ) m k)));
        ("bmat", Host.F (Workloads.farray ~seed:152 (Stdlib.( * ) k n)));
      ])
    prog
