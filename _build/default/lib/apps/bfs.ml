open Ppat_ir
open Exp.Infix

let app ?(nodes = 16384) ?(avg_degree = 8) () =
  let b = Builder.create () in
  let step =
    Builder.foreach b ~label:"bfs_step" ~size:(Pat.Sparam "NODES") (fun node ->
        let deg = read "row_ptr" [ node + i 1 ] - read "row_ptr" [ node ] in
        [
          Pat.If
            ( read "cost" [ node ] = read "lvl" [ i 0 ],
              [
                Builder.nest
                  (Builder.foreach b ~label:"nbrs" ~size:(Pat.Sdyn deg)
                     (fun e ->
                       [
                         Pat.Let
                           ("nbr", read "cols" [ read "row_ptr" [ node ] + e ]);
                         Pat.If
                           ( read "cost" [ v "nbr" ] < i 0,
                             [
                               Pat.Store
                                 ("cost", [ v "nbr" ], read "lvl" [ i 0 ] + i 1);
                               Pat.Store ("flag", [ i 0 ], i 1);
                             ],
                             [] );
                       ]));
              ],
              [] );
        ])
  in
  let bump =
    Builder.foreach b ~label:"bfs_bump" ~size:(Pat.Sconst 1) (fun _ ->
        [ Pat.Store ("lvl", [ i 0 ], read "lvl" [ i 0 ] + i 1) ])
  in
  let prog =
    {
      Pat.pname = "bfs";
      defaults =
        [
          ("NODES", nodes);
          ("EDGES", Stdlib.( * ) nodes avg_degree);
          (* size hint for the dynamically-sized neighbour level *)
          ("HINT_nbrs", avg_degree);
        ];
      buffers =
        [
          Pat.buffer "row_ptr" Ty.I32 [ Ty.Const (Stdlib.( + ) nodes 1) ] Pat.Input;
          Pat.buffer "cols" Ty.I32 [ Ty.Param "EDGES" ] Pat.Input;
          Pat.buffer "cost" Ty.I32 [ Ty.Param "NODES" ] Pat.Input;
          Pat.buffer "lvl" Ty.I32 [ Ty.Const 1 ] Pat.Temp;
          Pat.buffer "flag" Ty.I32 [ Ty.Const 1 ] Pat.Temp;
        ];
      steps =
        [
          Pat.While_flag
            {
              flag = "flag";
              max_iter = 64;
              body =
                [
                  Pat.Launch { bind = None; pat = step };
                  Pat.Launch { bind = None; pat = bump };
                ];
            };
        ];
    }
  in
  App.make ~name:"BFS"
    ~gen:(fun params ->
      let n = List.assoc "NODES" params in
      let edges = List.assoc "EDGES" params in
      let row_ptr, cols = Workloads.csr_graph ~seed:81 ~nodes:n ~avg_degree in
      (* pad/trim the edge list to the declared extent *)
      let m = row_ptr.(n) in
      let cols' = Array.make edges 0 in
      Array.blit cols 0 cols' 0 (min m edges);
      let row_ptr' = Array.map (fun x -> min x edges) row_ptr in
      let cost = Array.make n (-1) in
      cost.(0) <- 0;
      [
        ("row_ptr", Host.I row_ptr');
        ("cols", Host.I cols');
        ("cost", Host.I cost);
      ])
    prog
