open Ppat_ir

let gen params =
  let r = List.assoc "R" params and c = List.assoc "C" params in
  [ ("m", Host.F (Workloads.farray ~seed:11 (r * c))) ]

let gen_weighted ~inner params =
  let r = List.assoc "R" params and c = List.assoc "C" params in
  let wn = if inner = `Cols then r else c in
  [
    ("m", Host.F (Workloads.farray ~seed:11 (r * c)));
    ("v", Host.F (Workloads.farray ~seed:13 wn));
  ]

let matrix_buffers out_extent =
  [
    Pat.buffer "m" Ty.F64 [ Ty.Param "R"; Ty.Param "C" ] Pat.Input;
    Pat.buffer "out" Ty.F64 [ Ty.Param out_extent ] Pat.Output;
  ]

let sum_rows ?(r = 4096) ?(c = 256) () =
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"sum_rows" ~size:(Pat.Sparam "R") (fun row ->
        let red =
          Builder.reduce b ~label:"row_sum" ~size:(Pat.Sparam "C") (fun col ->
              ([], Exp.Read ("m", [ row; col ])))
        in
        ([ Builder.bind "s" red ], Exp.Var "s"))
  in
  let prog =
    {
      Pat.pname = "sum_rows";
      defaults = [ ("R", r); ("C", c) ];
      buffers = matrix_buffers "R";
      steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
    }
  in
  App.make ~name:"sumRows" ~gen prog

let sum_cols ?(r = 4096) ?(c = 256) () =
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"sum_cols" ~size:(Pat.Sparam "C") (fun col ->
        let red =
          Builder.reduce b ~label:"col_sum" ~size:(Pat.Sparam "R") (fun row ->
              ([], Exp.Read ("m", [ row; col ])))
        in
        ([ Builder.bind "s" red ], Exp.Var "s"))
  in
  let prog =
    {
      Pat.pname = "sum_cols";
      defaults = [ ("R", r); ("C", c) ];
      buffers = matrix_buffers "C";
      steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
    }
  in
  App.make ~name:"sumCols" ~gen prog

(* weighted variants: a nested Map materialises the element-wise product
   into a per-iteration temporary (Figure 15), then the reduce folds it *)
let sum_weighted_rows ?(r = 2048) ?(c = 256) () =
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"swr" ~size:(Pat.Sparam "R") (fun row ->
        let tmp =
          Builder.map b ~label:"wprod" ~size:(Pat.Sparam "C") (fun col ->
              ( [],
                Exp.Bin
                  ( Exp.Mul,
                    Exp.Read ("m", [ row; col ]),
                    Exp.Read ("v", [ col ]) ) ))
        in
        let red =
          Builder.reduce b ~label:"wsum" ~size:(Pat.Sparam "C") (fun col ->
              ([], Exp.Read ("tmp", [ col ])))
        in
        ([ Builder.bind "tmp" tmp; Builder.bind "s" red ], Exp.Var "s"))
  in
  let prog =
    {
      Pat.pname = "sum_weighted_rows";
      defaults = [ ("R", r); ("C", c) ];
      buffers =
        Pat.buffer "v" Ty.F64 [ Ty.Param "C" ] Pat.Input
        :: matrix_buffers "R";
      steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
    }
  in
  App.make ~name:"sumWeightedRows" ~gen:(gen_weighted ~inner:`Rows) prog

let sum_weighted_cols ?(r = 256) ?(c = 2048) () =
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"swc" ~size:(Pat.Sparam "C") (fun col ->
        let tmp =
          Builder.map b ~label:"wprod" ~size:(Pat.Sparam "R") (fun row ->
              ( [],
                Exp.Bin
                  ( Exp.Mul,
                    Exp.Read ("m", [ row; col ]),
                    Exp.Read ("v", [ row ]) ) ))
        in
        let red =
          Builder.reduce b ~label:"wsum" ~size:(Pat.Sparam "R") (fun row ->
              ([], Exp.Read ("tmp", [ row ])))
        in
        ([ Builder.bind "tmp" tmp; Builder.bind "s" red ], Exp.Var "s"))
  in
  let prog =
    {
      Pat.pname = "sum_weighted_cols";
      defaults = [ ("R", r); ("C", c) ];
      buffers =
        Pat.buffer "v" Ty.F64 [ Ty.Param "R" ] Pat.Input
        :: matrix_buffers "C";
      steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
    }
  in
  App.make ~name:"sumWeightedCols" ~gen:(gen_weighted ~inner:`Cols) prog
