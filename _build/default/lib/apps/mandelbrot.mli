(** Mandelbrot set iteration counts over a 2D pixel grid: a two-level
    Foreach nest whose body is a data-dependent escape loop (warp
    divergence). Used in Figures 12, 13 and for the mapping-space sweep of
    Figure 17 (with a skewed output matrix).

    The (R) variant iterates rows then columns; the (C) variant is the
    column-major traversal the fixed strategies cannot adapt to
    (Section VI-D). *)

type order = R | C

val app : ?h:int -> ?w:int -> ?max_iter:int -> order -> App.t
