(** Rodinia SRAD (speckle-reducing anisotropic diffusion): each iteration
    computes image statistics (two global reductions), a diffusion
    coefficient per pixel from the 4-neighbour gradients, and a diffusion
    update. The stencil kernels form two-level nests with (R)/(C) traversal
    variants; the image is stored flat so index arithmetic exposes the
    stride-1 direction to the analysis. *)

type order = R | C

val app : ?n:int -> ?iters:int -> order -> App.t
