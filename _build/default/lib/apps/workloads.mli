(** Deterministic synthetic workload generators.

    All generators use a small splitmix-style PRNG keyed on an explicit
    seed, so every experiment and test is reproducible without touching the
    global [Random] state. *)

type rng

val rng : int -> rng
val next_float : rng -> float
(** Uniform in [0, 1). *)

val next_int : rng -> int -> int
(** Uniform in [0, bound). *)

val farray : ?lo:float -> ?hi:float -> seed:int -> int -> float array
val iarray : seed:int -> bound:int -> int -> int array

val permutation : seed:int -> int -> int array
(** A uniform random permutation of 0..n-1 (Fisher-Yates). *)

val csr_graph :
  seed:int -> nodes:int -> avg_degree:int ->
  int array * int array
(** [(row_ptr, cols)] of a random directed graph; degrees are skewed
    (roughly geometric around the average) to exercise load imbalance, the
    regime warp-based mapping was designed for. *)

val spd_matrix : seed:int -> int -> float array
(** Dense symmetric positive-definite matrix (row-major n x n), suitable
    for LU decomposition and Gaussian elimination without pivoting. *)
