lib/apps/pagerank.mli: App
