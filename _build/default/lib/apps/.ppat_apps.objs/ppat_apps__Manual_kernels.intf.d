lib/apps/manual_kernels.mli: App Ppat_codegen Ppat_core Ppat_gpu Ppat_ir
