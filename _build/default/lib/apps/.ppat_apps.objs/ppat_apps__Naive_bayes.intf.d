lib/apps/naive_bayes.mli: App
