lib/apps/sum_rows_cols.ml: App Builder Exp Host List Pat Ppat_ir Ty Workloads
