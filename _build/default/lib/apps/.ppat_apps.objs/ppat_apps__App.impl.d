lib/apps/app.ml: Ppat_ir
