lib/apps/mandelbrot.mli: App
