lib/apps/lud.mli: App
