lib/apps/naive_bayes.ml: App Array Builder Exp Float Host List Pat Ppat_ir Stdlib Ty Workloads
