lib/apps/nearest_neighbor.ml: App Builder Exp Host List Pat Ppat_ir Ty Workloads
