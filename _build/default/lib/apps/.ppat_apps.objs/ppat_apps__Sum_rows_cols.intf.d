lib/apps/sum_rows_cols.mli: App
