lib/apps/mandelbrot.ml: App Builder Exp Pat Ppat_ir Ty
