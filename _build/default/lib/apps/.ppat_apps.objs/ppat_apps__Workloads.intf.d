lib/apps/workloads.mli:
