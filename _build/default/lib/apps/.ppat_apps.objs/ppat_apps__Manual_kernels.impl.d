lib/apps/manual_kernels.ml: App Exp Host List Pat Ppat_core Ppat_gpu Ppat_harness Ppat_ir Ppat_kernel Ty
