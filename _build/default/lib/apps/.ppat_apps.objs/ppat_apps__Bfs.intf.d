lib/apps/bfs.mli: App
