lib/apps/app.mli: Ppat_ir
