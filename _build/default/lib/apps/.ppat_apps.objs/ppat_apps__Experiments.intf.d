lib/apps/experiments.mli: App Format Ppat_core Ppat_gpu
