lib/apps/nearest_neighbor.mli: App
