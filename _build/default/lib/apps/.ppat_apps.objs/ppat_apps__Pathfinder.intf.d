lib/apps/pathfinder.mli: App
