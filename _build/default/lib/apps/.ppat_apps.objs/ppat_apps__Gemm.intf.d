lib/apps/gemm.mli: App
