lib/apps/msm_cluster.mli: App
