lib/apps/bfs.ml: App Array Builder Exp Host List Pat Ppat_ir Stdlib Ty Workloads
