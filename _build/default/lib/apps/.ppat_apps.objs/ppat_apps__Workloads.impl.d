lib/apps/workloads.ml: Array Int64
