lib/apps/qpscd.mli: App
