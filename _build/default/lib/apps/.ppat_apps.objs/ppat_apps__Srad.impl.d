lib/apps/srad.ml: App Builder Exp Host List Pat Ppat_ir Stdlib Ty Workloads
