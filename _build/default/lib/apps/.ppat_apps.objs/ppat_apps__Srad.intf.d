lib/apps/srad.mli: App
