lib/apps/gaussian.mli: App
