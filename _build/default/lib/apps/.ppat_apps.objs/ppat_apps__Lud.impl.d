lib/apps/lud.ml: App Builder Exp Host List Pat Ppat_ir Stdlib Ty Workloads
