lib/apps/hotspot.mli: App
