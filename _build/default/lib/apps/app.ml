type t = {
  name : string;
  prog : Ppat_ir.Pat.prog;
  params : (string * int) list;
  gen : (string * int) list -> Ppat_ir.Host.data;
  unordered : string list;
  eps : float;
}

let make ?(params = []) ?(unordered = []) ?(eps = 1e-6) ~name ~gen prog =
  { name; prog; params; gen; unordered; eps }

let resolved_params t = Ppat_ir.Host.params_of t.prog t.params
let input_data t = t.gen (resolved_params t)
