open Ppat_ir
open Exp.Infix

let app ?(frames = 4096) ?(centers = 64) ?(dims = 64) () =
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"assign" ~size:(Pat.Sparam "T") (fun t ->
        let best =
          Builder.arg_min b ~label:"nearest" ~size:(Pat.Sparam "KC") (fun k ->
              let d2 =
                Builder.reduce b ~label:"dist2" ~size:(Pat.Sparam "D")
                  (fun d ->
                    let diff = read "pts" [ t; d ] - read "ctr" [ k; d ] in
                    ([ Pat.Let ("diff", diff) ], v "diff" * v "diff"))
              in
              ([ Builder.bind "d2" d2 ], v "d2"))
        in
        ([ Builder.bind "best" best ], i2f (v "best")))
  in
  let prog =
    {
      Pat.pname = "msm_cluster";
      defaults = [ ("T", frames); ("KC", centers); ("D", dims) ];
      buffers =
        [
          Pat.buffer "pts" Ty.F64 [ Ty.Param "T"; Ty.Param "D" ] Pat.Input;
          Pat.buffer "ctr" Ty.F64 [ Ty.Param "KC"; Ty.Param "D" ] Pat.Input;
          Pat.buffer "assign" Ty.F64 [ Ty.Param "T" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = Some "assign"; pat = top } ];
    }
  in
  App.make ~name:"MSMBuilder"
    ~gen:(fun params ->
      let t = List.assoc "T" params
      and k = List.assoc "KC" params
      and d = List.assoc "D" params in
      [
        ("pts", Host.F (Workloads.farray ~seed:101 (Stdlib.( * ) t d)));
        ("ctr", Host.F (Workloads.farray ~seed:102 (Stdlib.( * ) k d)));
      ])
    prog
