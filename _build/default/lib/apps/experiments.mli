(** The paper's evaluation (Section VI): one function per figure.

    Each experiment runs its applications through the CPU oracle and the
    simulated GPU under the relevant strategies, validates every run, and
    returns a table of absolute simulated times that the printer normalises
    the way the paper's figures do. Sizes are scaled down from the paper's
    (the simulator interprets every warp) but keep the paper's shapes —
    skew ratios, level counts, degree distributions; see DESIGN.md. *)

type cell = {
  variant : string;  (** strategy / configuration name *)
  seconds : float;
  ok : bool;  (** validated against the CPU reference *)
}

type row = { rlabel : string; cells : cell list }

type table = {
  title : string;
  baseline : string;  (** variant every row is normalised to *)
  rows : row list;
  notes : string list;
}

val fig3 : Ppat_gpu.Device.t -> table
(** sumCols/sumRows on three matrix shapes (same total elements), fixed
    strategies normalised to MultiDim. *)

val fig12 : Ppat_gpu.Device.t -> table
(** Rodinia benchmarks: Manual vs MultiDim vs 1D, normalised to Manual. *)

val fig13 : Ppat_gpu.Device.t -> table
(** Row-/column-order variants vs the fixed 2D strategies, normalised to
    MultiDim. *)

val fig14 : Ppat_gpu.Device.t -> table
(** Real-world applications vs the multi-core CPU model; the Naive Bayes
    row includes a MultiDim+transfer variant. *)

val fig16 : Ppat_gpu.Device.t -> table
(** Dynamic-allocation optimisation: malloc vs pre-allocation vs
    pre-allocation with mapping-aware layout. *)

type sweep_point = {
  mapping : Ppat_core.Mapping.t;
  score : float;
  sw_seconds : float;
}

val fig17 :
  ?max_points:int -> Ppat_gpu.Device.t -> sweep_point list * table
(** Mapping-space sweep on a skewed Mandelbrot: every sampled hard-feasible
    mapping with its score and simulated time, plus a summary table
    (best region, the auto pick, the warp-based preset). *)

val fig8_app : ?rows:int -> ?cols:int -> unit -> App.t
(** The paper's Figure 8 shape: an imperfect nest whose outer level reads a
    vector under an inner 2D sweep (used by the prefetch ablation). *)

val ablation : Ppat_gpu.Device.t -> table
(** Each mapping-guided optimisation toggled in isolation: shared-memory
    prefetch (Section V-B) on the paper's Figure 8 shape and on Gaussian,
    warp-synchronous reduction tails, and atomic-append versus
    scan-compacted Filter. *)

val print_table : Format.formatter -> table -> unit
val print_sweep : Format.formatter -> sweep_point list -> unit

val all : Ppat_gpu.Device.t -> (string * (unit -> unit)) list
(** Named thunks that run and print each figure, in paper order. *)
