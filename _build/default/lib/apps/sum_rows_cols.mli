(** The paper's running example (Figures 1-3): sum the rows or columns of a
    row-major matrix, expressed as a Map over one axis with a nested Reduce
    over the other; and the weighted variants of Figure 15 that introduce a
    nested-Map temporary allocation (the dynamic-allocation micro-benchmark
    of Figure 16). *)

val sum_rows : ?r:int -> ?c:int -> unit -> App.t
(** [out.(i) = sum_j m.(i).(j)]; inner accesses are stride-1 in the inner
    (column) index, so MultiDim maps the reduce level to dimension x. *)

val sum_cols : ?r:int -> ?c:int -> unit -> App.t
(** [out.(j) = sum_i m.(i).(j)]; stride-1 in the {e outer} index, so
    MultiDim flips the dimensions — the case fixed strategies lose. *)

val sum_weighted_rows : ?r:int -> ?c:int -> unit -> App.t
(** Each row is multiplied element-wise by a weight vector into a nested-Map
    temporary before the reduction (Figure 15). *)

val sum_weighted_cols : ?r:int -> ?c:int -> unit -> App.t
