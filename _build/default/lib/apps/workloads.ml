type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435761 + 1) }

(* splitmix64 *)
let next_u64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_float r =
  let u = Int64.shift_right_logical (next_u64 r) 11 in
  Int64.to_float u /. 9007199254740992.

let next_int r bound =
  if bound <= 0 then invalid_arg "next_int: bound <= 0";
  let u = Int64.shift_right_logical (next_u64 r) 1 in
  Int64.to_int (Int64.rem u (Int64.of_int bound))

let farray ?(lo = 0.) ?(hi = 1.) ~seed n =
  let r = rng seed in
  Array.init n (fun _ -> lo +. ((hi -. lo) *. next_float r))

let iarray ~seed ~bound n =
  let r = rng seed in
  Array.init n (fun _ -> next_int r bound)

let permutation ~seed n =
  let r = rng seed in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = next_int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let csr_graph ~seed ~nodes ~avg_degree =
  let r = rng seed in
  let degs =
    Array.init nodes (fun _ ->
        (* skewed degrees: most nodes small, a few heavy *)
        let u = next_float r in
        let d =
          if u < 0.80 then next_int r (max 1 (avg_degree / 2))
          else if u < 0.99 then avg_degree + next_int r (3 * avg_degree + 1)
          else 64 * avg_degree
        in
        min d (nodes - 1))
  in
  let row_ptr = Array.make (nodes + 1) 0 in
  for i = 0 to nodes - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + degs.(i)
  done;
  let m = row_ptr.(nodes) in
  let cols = Array.make (max 1 m) 0 in
  for i = 0 to nodes - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      cols.(k) <- next_int r nodes
    done
  done;
  (row_ptr, cols)

let spd_matrix ~seed n =
  let r = rng seed in
  let a = Array.init (n * n) (fun _ -> next_float r) in
  (* diagonal dominance => no pivoting needed *)
  for i = 0 to n - 1 do
    a.((i * n) + i) <- a.((i * n) + i) +. float_of_int n
  done;
  a
