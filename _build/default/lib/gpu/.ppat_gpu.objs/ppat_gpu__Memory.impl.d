lib/gpu/memory.ml: Array Hashtbl List Ppat_ir Printf
