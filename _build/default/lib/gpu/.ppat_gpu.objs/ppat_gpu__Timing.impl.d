lib/gpu/timing.ml: Device Float Format Stats
