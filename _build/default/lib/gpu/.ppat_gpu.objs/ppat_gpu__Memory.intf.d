lib/gpu/memory.mli: Ppat_ir
