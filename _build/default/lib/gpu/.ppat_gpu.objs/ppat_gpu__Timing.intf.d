lib/gpu/timing.mli: Device Format Stats
