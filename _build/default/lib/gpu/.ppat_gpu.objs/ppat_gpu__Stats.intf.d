lib/gpu/stats.mli: Format
