type t = {
  mutable warp_insts : float;
  mutable mem_insts : float;
  mutable transactions : float;
  mutable bytes : float;
  mutable l2_bytes : float;
  mutable smem_insts : float;
  mutable smem_conflict_extra : float;
  mutable syncs : float;
  mutable divergent_branches : float;
  mutable atomics : float;
  mutable atomic_serial_extra : float;
  mutable mallocs : float;
}

let create () =
  {
    warp_insts = 0.;
    mem_insts = 0.;
    transactions = 0.;
    bytes = 0.;
    l2_bytes = 0.;
    smem_insts = 0.;
    smem_conflict_extra = 0.;
    syncs = 0.;
    divergent_branches = 0.;
    atomics = 0.;
    atomic_serial_extra = 0.;
    mallocs = 0.;
  }

let add acc s =
  acc.warp_insts <- acc.warp_insts +. s.warp_insts;
  acc.mem_insts <- acc.mem_insts +. s.mem_insts;
  acc.transactions <- acc.transactions +. s.transactions;
  acc.bytes <- acc.bytes +. s.bytes;
  acc.l2_bytes <- acc.l2_bytes +. s.l2_bytes;
  acc.smem_insts <- acc.smem_insts +. s.smem_insts;
  acc.smem_conflict_extra <- acc.smem_conflict_extra +. s.smem_conflict_extra;
  acc.syncs <- acc.syncs +. s.syncs;
  acc.divergent_branches <- acc.divergent_branches +. s.divergent_branches;
  acc.atomics <- acc.atomics +. s.atomics;
  acc.atomic_serial_extra <- acc.atomic_serial_extra +. s.atomic_serial_extra;
  acc.mallocs <- acc.mallocs +. s.mallocs

let reset s =
  s.warp_insts <- 0.;
  s.mem_insts <- 0.;
  s.transactions <- 0.;
  s.bytes <- 0.;
  s.l2_bytes <- 0.;
  s.smem_insts <- 0.;
  s.smem_conflict_extra <- 0.;
  s.syncs <- 0.;
  s.divergent_branches <- 0.;
  s.atomics <- 0.;
  s.atomic_serial_extra <- 0.;
  s.mallocs <- 0.

let copy s =
  let c = create () in
  add c s;
  c

let pp ppf s =
  Format.fprintf ppf
    "@[<v>warp insts: %.0f@,global mem insts: %.0f (transactions: %.0f, \
     dram %.0f B, l2 %.0f B)@,smem insts: %.0f (+%.0f conflict)@,syncs: \
     %.0f@,divergent branches: %.0f@,atomics: %.0f (+%.0f serial)@,mallocs: \
     %.0f@]"
    s.warp_insts s.mem_insts s.transactions s.bytes s.l2_bytes s.smem_insts
    s.smem_conflict_extra s.syncs s.divergent_branches s.atomics
    s.atomic_serial_extra s.mallocs
