(** Simulated device global memory.

    Buffers live in a single flat byte-address space so the interpreter can
    coalesce a warp's accesses exactly the way the hardware memory
    controller does: the 32 lane addresses of one warp instruction are
    grouped into distinct aligned [transaction_bytes] segments and each
    segment costs one DRAM transaction (Section II, "GPU Hardware"). *)

type t

type entry = {
  base : int;  (** byte address of element 0, 256-byte aligned *)
  elem_bytes : int;
  data : Ppat_ir.Host.buf;  (** mutable contents *)
}

val create : unit -> t

val load : t -> string -> Ppat_ir.Host.buf -> entry
(** Allocate a named buffer and copy host contents in. Re-loading an
    existing name rebinds it to a fresh allocation. *)

val alloc_f : t -> string -> int -> entry
(** Allocate a zero-filled float buffer of [n] elements. *)

val alloc_i : t -> string -> int -> entry

val find : t -> string -> entry
(** @raise Invalid_argument on unknown names. *)

val mem : t -> string -> bool

val swap : t -> string -> string -> unit
(** Exchange the storage bound to two names (host-side pointer swap). *)

val to_host : t -> string -> Ppat_ir.Host.buf
(** Copy a buffer's current contents back out. *)

val addr : entry -> int -> int
(** Byte address of element [i]. *)

val coalesce : transaction_bytes:int -> int list -> int
(** Number of aligned transactions covering the given byte addresses — the
    coalescing rule applied per warp memory instruction. *)

val segments : transaction_bytes:int -> int list -> int list
(** The distinct aligned transaction (cache line) ids behind those
    addresses. *)

val cache_access : t -> cap_lines:int -> lines:int list -> int
(** Run transaction lines through the device-lifetime L2 model (an
    approximate-LRU set of line ids, shared across kernel launches like the
    real unified L2); returns how many of them hit. *)
