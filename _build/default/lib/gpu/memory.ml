type entry = { base : int; elem_bytes : int; data : Ppat_ir.Host.buf }

type t = {
  mutable next_base : int;
  bufs : (string, entry) Hashtbl.t;
  (* approximate-LRU L2: line id -> last-touch tick *)
  l2 : (int, int) Hashtbl.t;
  mutable l2_tick : int;
}

let create () =
  { next_base = 256; bufs = Hashtbl.create 32; l2 = Hashtbl.create 4096;
    l2_tick = 0 }

let align n a = (n + a - 1) / a * a

let install t name elem_bytes data nbytes =
  let base = align t.next_base 256 in
  t.next_base <- base + nbytes;
  let e = { base; elem_bytes; data } in
  Hashtbl.replace t.bufs name e;
  e

let load t name (buf : Ppat_ir.Host.buf) =
  match buf with
  | Ppat_ir.Host.F a ->
    install t name 8 (Ppat_ir.Host.F (Array.copy a)) (8 * Array.length a)
  | Ppat_ir.Host.I a ->
    install t name 4 (Ppat_ir.Host.I (Array.copy a)) (4 * Array.length a)

let alloc_f t name n =
  install t name 8 (Ppat_ir.Host.F (Array.make n 0.)) (8 * n)

let alloc_i t name n =
  install t name 4 (Ppat_ir.Host.I (Array.make n 0)) (4 * n)

let find t name =
  match Hashtbl.find_opt t.bufs name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Memory.find: no buffer %S" name)

let mem t name = Hashtbl.mem t.bufs name

let swap t a b =
  let ea = find t a and eb = find t b in
  Hashtbl.replace t.bufs a eb;
  Hashtbl.replace t.bufs b ea

let to_host t name =
  match (find t name).data with
  | Ppat_ir.Host.F a -> Ppat_ir.Host.F (Array.copy a)
  | Ppat_ir.Host.I a -> Ppat_ir.Host.I (Array.copy a)

let addr e i = e.base + (i * e.elem_bytes)

let segments ~transaction_bytes addrs =
  let segs = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace segs (a / transaction_bytes) ()) addrs;
  Hashtbl.fold (fun line () acc -> line :: acc) segs []

let coalesce ~transaction_bytes addrs =
  List.length (segments ~transaction_bytes addrs)

let cache_access t ~cap_lines ~lines =
  let hits = ref 0 in
  List.iter
    (fun line ->
      t.l2_tick <- t.l2_tick + 1;
      if Hashtbl.mem t.l2 line then incr hits;
      Hashtbl.replace t.l2 line t.l2_tick)
    lines;
  (* amortised eviction: when 25% over capacity, keep the newest lines *)
  if Hashtbl.length t.l2 > cap_lines + (cap_lines / 4) then begin
    let all = Hashtbl.fold (fun line tick acc -> (tick, line) :: acc) t.l2 [] in
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) all in
    Hashtbl.reset t.l2;
    List.iteri
      (fun i (tick, line) -> if i < cap_lines then Hashtbl.replace t.l2 line tick)
      sorted
  end;
  !hits
