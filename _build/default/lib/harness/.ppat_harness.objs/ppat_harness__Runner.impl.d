lib/harness/runner.ml: Array Host List Pat Ppat_codegen Ppat_core Ppat_cpu Ppat_gpu Ppat_ir Ppat_kernel Printf String Ty
