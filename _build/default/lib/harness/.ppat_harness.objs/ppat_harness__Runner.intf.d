lib/harness/runner.mli: Ppat_codegen Ppat_core Ppat_cpu Ppat_gpu Ppat_ir
