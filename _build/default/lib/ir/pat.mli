(** Parallel patterns, pattern bodies and whole programs (paper Section III,
    Table I).

    A program is a sequence of host-side steps; each [Launch] step names a
    top-level (level-0) pattern that becomes one GPU kernel (or several, when
    the mapping requires a combiner, cf. Split(k)). Pattern bodies contain
    sequential statements and {e nested} patterns, which is where the mapping
    analysis of Section IV operates. *)

(** How a pattern's index domain size is known. *)
type psize =
  | Sconst of int  (** compile-time constant *)
  | Sparam of string  (** runtime parameter, known at kernel launch *)
  | Sexp of Exp.t
      (** launch-time computable expression over parameters (e.g. [N-1-t]
          inside a host loop); known at launch, so it does not force
          Span(all) *)
  | Sdyn of Exp.t
      (** computed per outer iteration (e.g. a CSR row degree); unknown at
          launch, which forces Span(all) — paper Section IV-A *)

(** Associative combiner of a [Reduce]. [combine] references the two operands
    through the variable names [a] and [b]. *)
type reducer = {
  init : Exp.t;
  a : string;
  b : string;
  combine : Exp.t;
}

type kind =
  | Map of { yield : Exp.t }
      (** Produce one element per index. Bound to an output buffer at level 0
          or to a pattern-local array when nested (the dynamic-allocation case
          of Section V-A). *)
  | Reduce of { yield : Exp.t; r : reducer }
      (** Reduce the per-index [yield] values with [r]; produces a scalar. *)
  | Arg_min of { yield : Exp.t }
      (** Index (as an integer) of the minimum [yield]; used by clustering. *)
  | Foreach  (** Effectful body only; no value produced (Table I). *)
  | Filter of { pred : Exp.t; yield : Exp.t }
      (** Keep [yield] of indices satisfying [pred]. Produces a compacted
          array plus an element count. *)
  | Group_by of { key : Exp.t; value : Exp.t; num_keys : Ty.extent }
      (** Group [value]s by integer [key] in [0, num_keys). Produces
          per-key counts, offsets, and the permuted values. *)

and stmt =
  | Let of string * Exp.t
  | Assign of string * Exp.t
      (** Update a [Let]-bound variable in place (loop-carried scalars in
          sequential [While]/[For] bodies). *)
  | Store of string * Exp.t list * Exp.t
      (** Write a global buffer (or a pattern-local array) element. *)
  | Atomic_add of string * Exp.t list * Exp.t
      (** Atomically accumulate into a buffer element (histograms, BFS
          frontier flags). *)
  | Nested of nested
  | If of Exp.t * stmt list * stmt list
  | For of string * Exp.t * Exp.t * stmt list
      (** Sequential loop [var] in [lo, hi); no parallelism exposed. *)
  | While of Exp.t * stmt list
      (** Sequential data-dependent loop (Mandelbrot escape iteration). *)

and nested = {
  bind : string option;
      (** Name the result: a global buffer at level 0, a local array (Map) or
          scalar variable (Reduce/Arg_min) when nested. Filter at level 0
          additionally writes ["<bind>_count"]. *)
  pat : pattern;
}

and pattern = {
  pid : int;  (** unique id; [Exp.Idx pid] is this pattern's index variable *)
  label : string;
  size : psize;
  kind : kind;
  body : stmt list;  (** executed before [yield]/[pred]/[key] per index *)
}

(** Whether a buffer lives as kernel input, output, or scratch. *)
type buf_kind = Input | Output | Temp

(** Physical linearisation of a logical multi-dimensional buffer. The layout
    optimisation of Section V-A flips this per temporary buffer. *)
type layout = Row_major | Col_major

type buffer = {
  bname : string;
  elem : Ty.scalar;
  dims : Ty.extent list;
  mutable blayout : layout;
  bkind : buf_kind;
}

(** Host-side control around kernel launches. *)
type step =
  | Launch of nested
  | Host_loop of { var : string; count : Ty.extent; body : step list }
      (** Run [body] for [var] = 0 .. count-1; [var] is visible as a runtime
          parameter inside (Gaussian elimination steps, stencil sweeps). *)
  | Swap of string * string
      (** Exchange the storage of two same-shaped buffers (ping-pong). *)
  | While_flag of { flag : string; max_iter : int; body : step list }
      (** Clear [flag][0], run [body], repeat while [flag][0] <> 0 (BFS
          frontier loop), up to [max_iter] rounds. *)

type prog = {
  pname : string;
  defaults : (string * int) list;
      (** default values of runtime parameters, used when the caller supplies
          none and by the analysis when a size is a parameter *)
  buffers : buffer list;
  steps : step list;
}

val pattern :
  ?label:string -> pid:int -> size:psize -> kind:kind -> stmt list -> pattern

val nested : ?bind:string -> pattern -> nested
val buffer : ?layout:layout -> string -> Ty.scalar -> Ty.extent list -> buf_kind -> buffer
val find_buffer : prog -> string -> buffer

val sum_reducer : reducer
(** Floating-point [+] with init 0. *)

val max_reducer : reducer
val min_reducer : reducer
val int_sum_reducer : reducer
val int_or_reducer : reducer

val validate : prog -> (unit, string) result
(** Structural checks: unique pattern ids, unique buffer names, stores target
    existing buffers or local arrays, [bind] present where the kind produces
    a value, nesting depth at most 3 (the number of logical dimensions the
    code generator emits), dynamic sizes only on nested patterns. *)

val iter_patterns : (int -> pattern -> unit) -> prog -> unit
(** Apply a function to every pattern in the program with its nest level
    (0 = outermost). *)

val fold_patterns : ('a -> int -> pattern -> 'a) -> 'a -> prog -> 'a

val pp_prog : Format.formatter -> prog -> unit
(** Human-readable listing of the whole program, in the style of the paper's
    Figure 5 pseudocode. *)

val pp_pattern : Format.formatter -> pattern -> unit
val pp_psize : Format.formatter -> psize -> unit
