(** Nest-level structure of one top-level pattern (paper Section IV).

    A {e level} is the depth of a pattern from the outermost enclosing
    pattern: the launched pattern is level 0 and each nesting increments it.
    Several patterns can share a level (e.g. the inner map and inner reduce
    of PageRank, Figure 5), in which case the mapping analysis must pick the
    most conservative span for the level (global hard constraint,
    Table II). *)

type t = {
  top : Pat.pattern;
  depth : int;  (** number of levels (1 for a flat pattern) *)
  per_level : Pat.pattern list array;  (** patterns at each level *)
  level_of_pid : (int * int) list;
}

val of_top : Pat.pattern -> t

val level_of : t -> int -> int
(** Level of the pattern with the given pid. @raise Not_found if unknown. *)

val default_dyn_size : int
(** Assumed domain size when a pattern size is not known during analysis
    (1000, as in paper Section IV-C). *)

val size_value : (string * int) list -> Pat.psize -> int
(** Resolve a pattern size against the parameter environment; dynamic sizes
    resolve to {!default_dyn_size}. *)

val pattern_size : (string * int) list -> Pat.pattern -> int
(** Like {!size_value}, but a dynamically-sized pattern first consults the
    parameter ["HINT_<label>"] — the paper's "users can provide the size
    information from the application" (Section IV-C). *)

val level_size : (string * int) list -> t -> int -> int
(** Representative domain size of a level: the maximum resolved
    {!pattern_size} of the patterns at that level. *)

val has_dynamic_size : t -> int -> bool
(** True when any pattern at the level has an [Sdyn] size, which forces
    Span(all) for the level (paper Section IV-A, first Span(all) case). *)
