(** Scalar expressions of the pattern IR.

    Expressions appear inside pattern bodies: index arithmetic, arithmetic on
    loaded values, predicates of branches and filters. Array reads use
    {e logical} multi-dimensional indices; the physical linearisation (row-
    versus column-major) is a property of the buffer and is resolved by the
    code generator, which is what lets the layout optimisation of paper
    Section V-A re-map accesses without rewriting the program. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** float division, or truncating division on integers *)
  | Mod
  | Min
  | Max
  | And
  | Or

type unop =
  | Neg
  | Not
  | Sqrt
  | Exp_
  | Log_
  | Abs
  | I2f  (** integer to float conversion *)
  | F2i  (** float to integer truncation *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Idx of int
      (** The index variable of the enclosing pattern with this pattern id. *)
  | Param of string  (** Runtime integer parameter (host-supplied). *)
  | Var of string  (** A [Let]-bound local of the enclosing body. *)
  | Read of string * t list
      (** [Read (buf, idxs)]: element of a global buffer or of a pattern-local
          array at a logical multi-dimensional index. *)
  | Len of string
      (** Number of elements of a pattern-local array (its pattern size). *)
  | Bin of binop * t * t
  | Un of unop * t
  | Cmp of cmpop * t * t
  | Select of t * t * t  (** [Select (c, a, b)] = if [c] then [a] else [b]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val binop_name : binop -> string
(** C-style spelling of an operator ("+", "min", ...). *)

val unop_name : unop -> string
val cmpop_name : cmpop -> string

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over an expression tree, visiting every sub-expression. *)

val exists : (t -> bool) -> t -> bool
(** [exists p e] is true when any sub-expression of [e] satisfies [p]. *)

val reads : t -> (string * t list) list
(** All [Read] nodes of the expression, outermost first. *)

val subst_var : string -> t -> t -> t
(** [subst_var x v e] replaces every [Var x] in [e] by [v]. *)

val subst_idx : int -> t -> t -> t
(** [subst_idx pid v e] replaces every [Idx pid] in [e] by [v]. *)

val eval_int : params:(string * int) list -> t -> int option
(** Constant-fold an integer expression over literals and parameters.
    [None] when the expression mentions indices, variables, reads, or
    floats. *)

(** Convenience constructors used by application code. In expression-heavy
    app modules, [open Ppat_ir.Exp.Infix] locally. *)
module Infix : sig
  val i : int -> t
  val f : float -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( = ) : t -> t -> t
  val ( <> ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
  val not_ : t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val sqrt_ : t -> t
  val abs_ : t -> t
  val exp_ : t -> t
  val log_ : t -> t
  val i2f : t -> t
  val f2i : t -> t
  val v : string -> t
  val p : string -> t
  val idx : int -> t
  val read : string -> t list -> t
  val select : t -> t -> t -> t
end
