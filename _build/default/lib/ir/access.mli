(** Memory-access analysis feeding the mapping constraints (paper
    Section IV-C).

    For every array read/write in a nest we compute the {e stride} of the
    physical (linearised) element index with respect to each enclosing
    pattern index. A stride of 1 in level L means adjacent iterations of L
    touch adjacent memory — mapping L to dimension x with a block size that
    is a multiple of the warp size coalesces those requests (soft local
    constraint, Table II). Each access also carries an execution-count
    estimate (product of enclosing pattern sizes, discounted by enclosing
    branches) which becomes the derived weight of its constraints
    (Figure 8). *)

type stride =
  | Known of int
  | Unknown  (** data-dependent or non-affine (e.g. indices loaded from
                 memory, as in QPSCD's random row selection) *)

type access = {
  abuf : string;  (** buffer (or pattern-local array) name *)
  aidxs : Exp.t list;  (** the logical indices as written in the program *)
  alocal : bool;
      (** pattern-local array: its physical layout is chosen {e after} the
          mapping by the pre-allocation optimisation, so its accesses add no
          coalescing constraints (Section V-A, last paragraph) *)
  is_store : bool;
  strides : (int * stride) list;
      (** stride per enclosing pattern pid, innermost last *)
  weight : float;  (** execution-count estimate of this access *)
  branch_depth : int;
}

val collect :
  params:(string * int) list -> Pat.prog -> Pat.pattern -> access list
(** All global and local-array accesses of one top-level nest. [params]
    resolves extents (fall back to program defaults, then
    {!Levels.default_dyn_size}). *)

val stride_of :
  params:(string * int) list ->
  env:(string * [ `E of Exp.t | `Opaque ]) list ->
  wrt:int ->
  Exp.t ->
  stride
(** Symbolic stride of an integer expression with respect to pattern index
    [wrt]. Let-bound variables are resolved through [env]; [`Opaque]
    bindings (values of nested reductions, loop carried scalars) make the
    result [Unknown] when they occur in the expression. Exposed for unit
    testing. *)

val eval_int :
  params:(string * int) list ->
  env:(string * [ `E of Exp.t | `Opaque ]) list ->
  Exp.t ->
  int option
(** Best-effort constant evaluation of an index expression (no pattern
    indices, parameters resolved). Exposed for unit testing. *)

val linearize :
  params:(string * int) list -> Pat.buffer -> Exp.t list -> Exp.t
(** Physical element index of a logical multi-dimensional access under the
    buffer's current layout. *)

val pp_access : Format.formatter -> access -> unit
