type binop = Add | Sub | Mul | Div | Mod | Min | Max | And | Or
type unop = Neg | Not | Sqrt | Exp_ | Log_ | Abs | I2f | F2i
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Idx of int
  | Param of string
  | Var of string
  | Read of string * t list
  | Len of string
  | Bin of binop * t * t
  | Un of unop * t
  | Cmp of cmpop * t * t
  | Select of t * t * t

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | And -> "&&"
  | Or -> "||"

let unop_name = function
  | Neg -> "-"
  | Not -> "!"
  | Sqrt -> "sqrt"
  | Exp_ -> "exp"
  | Log_ -> "log"
  | Abs -> "abs"
  | I2f -> "(float)"
  | F2i -> "(int)"

let cmpop_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Float x -> Format.fprintf ppf "%g" x
  | Bool b -> Format.fprintf ppf "%b" b
  | Idx p -> Format.fprintf ppf "i%d" p
  | Param s -> Format.fprintf ppf "$%s" s
  | Var s -> Format.pp_print_string ppf s
  | Read (b, idxs) ->
    Format.fprintf ppf "%s[%a]" b
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp)
      idxs
  | Len b -> Format.fprintf ppf "len(%s)" b
  | Bin ((Min | Max) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Un (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmpop_name op) pp b
  | Select (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Float _ | Bool _ | Idx _ | Param _ | Var _ | Len _ -> acc
  | Read (_, idxs) -> List.fold_left (fold f) acc idxs
  | Bin (_, a, b) | Cmp (_, a, b) -> fold f (fold f acc a) b
  | Un (_, a) -> fold f acc a
  | Select (c, a, b) -> fold f (fold f (fold f acc c) a) b

let exists p e = fold (fun acc e -> acc || p e) false e

let reads e =
  List.rev
    (fold (fun acc e -> match e with Read (b, i) -> (b, i) :: acc | _ -> acc)
       [] e)

let rec map_subtree f e =
  match f e with
  | Some e' -> e'
  | None -> (
    match e with
    | Int _ | Float _ | Bool _ | Idx _ | Param _ | Var _ | Len _ -> e
    | Read (b, idxs) -> Read (b, List.map (map_subtree f) idxs)
    | Bin (op, a, b) -> Bin (op, map_subtree f a, map_subtree f b)
    | Un (op, a) -> Un (op, map_subtree f a)
    | Cmp (op, a, b) -> Cmp (op, map_subtree f a, map_subtree f b)
    | Select (c, a, b) ->
      Select (map_subtree f c, map_subtree f a, map_subtree f b))

let subst_var x v =
  map_subtree (function Var y when String.equal x y -> Some v | _ -> None)

let subst_idx pid v =
  map_subtree (function Idx q when q = pid -> Some v | _ -> None)

let rec eval_int ~params (e : t) =
  let both f a b =
    match eval_int ~params a, eval_int ~params b with
    | Some x, Some y -> f x y
    | _ -> None
  in
  match e with
  | Int n -> Some n
  | Param p -> List.assoc_opt p params
  | Bin (Add, a, b) -> both (fun x y -> Some (x + y)) a b
  | Bin (Sub, a, b) -> both (fun x y -> Some (x - y)) a b
  | Bin (Mul, a, b) -> both (fun x y -> Some (x * y)) a b
  | Bin (Div, a, b) -> both (fun x y -> if y = 0 then None else Some (x / y)) a b
  | Bin (Mod, a, b) ->
    both (fun x y -> if y = 0 then None else Some (x mod y)) a b
  | Bin (Min, a, b) -> both (fun x y -> Some (min x y)) a b
  | Bin (Max, a, b) -> both (fun x y -> Some (max x y)) a b
  | Un (Neg, a) -> Option.map (fun x -> -x) (eval_int ~params a)
  | _ -> None

module Infix = struct
  let i n = Int n
  let f x = Float x
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Div, a, b)
  let ( % ) a b = Bin (Mod, a, b)
  let ( < ) a b = Cmp (Lt, a, b)
  let ( <= ) a b = Cmp (Le, a, b)
  let ( > ) a b = Cmp (Gt, a, b)
  let ( >= ) a b = Cmp (Ge, a, b)
  let ( = ) a b = Cmp (Eq, a, b)
  let ( <> ) a b = Cmp (Ne, a, b)
  let ( && ) a b = Bin (And, a, b)
  let ( || ) a b = Bin (Or, a, b)
  let not_ a = Un (Not, a)
  let min_ a b = Bin (Min, a, b)
  let max_ a b = Bin (Max, a, b)
  let sqrt_ a = Un (Sqrt, a)
  let abs_ a = Un (Abs, a)
  let exp_ a = Un (Exp_, a)
  let log_ a = Un (Log_, a)
  let i2f a = Un (I2f, a)
  let f2i a = Un (F2i, a)
  let v s = Var s
  let p s = Param s
  let idx n = Idx n
  let read b idxs = Read (b, idxs)
  let select c a b = Select (c, a, b)
end
