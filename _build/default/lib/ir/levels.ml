type t = {
  top : Pat.pattern;
  depth : int;
  per_level : Pat.pattern list array;
  level_of_pid : (int * int) list;
}

let of_top (top : Pat.pattern) =
  let acc = ref [] in
  let depth = ref 0 in
  let rec visit level (p : Pat.pattern) =
    acc := (level, p) :: !acc;
    if level + 1 > !depth then depth := level + 1;
    let rec stmt = function
      | Pat.Let _ | Pat.Assign _ | Pat.Store _ | Pat.Atomic_add _ -> ()
      | Pat.Nested n -> visit (level + 1) n.pat
      | Pat.If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
      | Pat.For (_, _, _, b) | Pat.While (_, b) -> List.iter stmt b
    in
    List.iter stmt p.body
  in
  visit 0 top;
  let per_level = Array.make !depth [] in
  List.iter
    (fun (lvl, p) -> per_level.(lvl) <- p :: per_level.(lvl))
    !acc;
  let level_of_pid = List.map (fun (lvl, p) -> (p.Pat.pid, lvl)) !acc in
  { top; depth = !depth; per_level; level_of_pid }

let level_of t pid = List.assoc pid t.level_of_pid

let default_dyn_size = 1000

let size_value params = function
  | Pat.Sconst n -> n
  | Pat.Sparam p -> (
    match List.assoc_opt p params with
    | Some v -> v
    | None -> default_dyn_size)
  | Pat.Sexp e -> (
    match Exp.eval_int ~params e with
    | Some v -> v
    | None -> default_dyn_size)
  | Pat.Sdyn _ -> default_dyn_size

let pattern_size params (p : Pat.pattern) =
  match p.size with
  | Pat.Sdyn _ -> (
    match List.assoc_opt ("HINT_" ^ p.label) params with
    | Some v -> v
    | None -> default_dyn_size)
  | s -> size_value params s

let level_size params t lvl =
  List.fold_left
    (fun acc (p : Pat.pattern) -> max acc (pattern_size params p))
    1 t.per_level.(lvl)

let has_dynamic_size t lvl =
  List.exists
    (fun (p : Pat.pattern) ->
      match p.size with Pat.Sdyn _ -> true | _ -> false)
    t.per_level.(lvl)
