type buf = F of float array | I of int array
type data = (string * buf) list

let params_of (prog : Pat.prog) overrides =
  let keep (k, _) = not (List.mem_assoc k overrides) in
  overrides @ List.filter keep prog.defaults

let buffer_elems params (b : Pat.buffer) =
  List.fold_left (fun acc d -> acc * Ty.extent_value params d) 1 b.dims

let copy_buf = function
  | F a -> F (Array.copy a)
  | I a -> I (Array.copy a)

let copy data = List.map (fun (k, b) -> (k, copy_buf b)) data

let alloc_all (prog : Pat.prog) params data =
  let alloc (b : Pat.buffer) =
    let n = buffer_elems params b in
    match List.assoc_opt b.bname data with
    | Some (F a) when Array.length a = n && b.elem = Ty.F64 ->
      (b.bname, F (Array.copy a))
    | Some (I a) when Array.length a = n && b.elem <> Ty.F64 ->
      (b.bname, I (Array.copy a))
    | Some _ ->
      invalid_arg
        (Printf.sprintf "alloc_all: data for %S has wrong shape or type"
           b.bname)
    | None -> (
      match b.elem with
      | Ty.F64 -> (b.bname, F (Array.make n 0.))
      | Ty.I32 | Ty.Bool -> (b.bname, I (Array.make n 0)))
  in
  List.map alloc prog.buffers

let get_f data name =
  match List.assoc_opt name data with
  | Some (F a) -> a
  | Some (I _) -> invalid_arg (Printf.sprintf "get_f: %S is integer" name)
  | None -> invalid_arg (Printf.sprintf "get_f: no buffer %S" name)

let get_i data name =
  match List.assoc_opt name data with
  | Some (I a) -> a
  | Some (F _) -> invalid_arg (Printf.sprintf "get_i: %S is float" name)
  | None -> invalid_arg (Printf.sprintf "get_i: no buffer %S" name)

let approx_equal ?(eps = 1e-9) a b =
  match a, b with
  | F x, F y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri
          (fun i xi ->
            let yi = y.(i) in
            let scale = Float.max 1. (Float.max (Float.abs xi) (Float.abs yi)) in
            if Float.abs (xi -. yi) > eps *. scale then ok := false)
          x;
        !ok)
  | I x, I y -> x = y
  | F _, I _ | I _, F _ -> false

let pp_buf ppf = function
  | F a ->
    Format.fprintf ppf "@[<h>[%a]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf x -> Format.fprintf ppf "%g" x))
      (Array.to_list a)
  | I a ->
    Format.fprintf ppf "@[<h>[%a]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Format.pp_print_int)
      (Array.to_list a)
