type psize = Sconst of int | Sparam of string | Sexp of Exp.t | Sdyn of Exp.t

type reducer = { init : Exp.t; a : string; b : string; combine : Exp.t }

type kind =
  | Map of { yield : Exp.t }
  | Reduce of { yield : Exp.t; r : reducer }
  | Arg_min of { yield : Exp.t }
  | Foreach
  | Filter of { pred : Exp.t; yield : Exp.t }
  | Group_by of { key : Exp.t; value : Exp.t; num_keys : Ty.extent }

and stmt =
  | Let of string * Exp.t
  | Assign of string * Exp.t
  | Store of string * Exp.t list * Exp.t
  | Atomic_add of string * Exp.t list * Exp.t
  | Nested of nested
  | If of Exp.t * stmt list * stmt list
  | For of string * Exp.t * Exp.t * stmt list
  | While of Exp.t * stmt list

and nested = { bind : string option; pat : pattern }

and pattern = {
  pid : int;
  label : string;
  size : psize;
  kind : kind;
  body : stmt list;
}

type buf_kind = Input | Output | Temp
type layout = Row_major | Col_major

type buffer = {
  bname : string;
  elem : Ty.scalar;
  dims : Ty.extent list;
  mutable blayout : layout;
  bkind : buf_kind;
}

type step =
  | Launch of nested
  | Host_loop of { var : string; count : Ty.extent; body : step list }
  | Swap of string * string
  | While_flag of { flag : string; max_iter : int; body : step list }

type prog = {
  pname : string;
  defaults : (string * int) list;
  buffers : buffer list;
  steps : step list;
}

let pattern ?label ~pid ~size ~kind body =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "p%d" pid
  in
  { pid; label; size; kind; body }

let nested ?bind pat = { bind; pat }

let buffer ?(layout = Row_major) bname elem dims bkind =
  { bname; elem; dims; blayout = layout; bkind }

let find_buffer prog name =
  match List.find_opt (fun b -> String.equal b.bname name) prog.buffers with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "find_buffer: no buffer %S" name)

let sum_reducer =
  { init = Exp.Float 0.; a = "a"; b = "b";
    combine = Exp.Bin (Exp.Add, Exp.Var "a", Exp.Var "b") }

let max_reducer =
  { init = Exp.Float neg_infinity; a = "a"; b = "b";
    combine = Exp.Bin (Exp.Max, Exp.Var "a", Exp.Var "b") }

let min_reducer =
  { init = Exp.Float infinity; a = "a"; b = "b";
    combine = Exp.Bin (Exp.Min, Exp.Var "a", Exp.Var "b") }

let int_sum_reducer =
  { init = Exp.Int 0; a = "a"; b = "b";
    combine = Exp.Bin (Exp.Add, Exp.Var "a", Exp.Var "b") }

let int_or_reducer =
  { init = Exp.Int 0; a = "a"; b = "b";
    combine = Exp.Bin (Exp.Max, Exp.Var "a", Exp.Var "b") }

(* ----- traversal ----- *)

let rec iter_stmts_pattern f level p =
  f level p;
  iter_stmts f (level + 1) p.body

and iter_stmts f level stmts =
  let rec stmt = function
    | Let _ | Assign _ | Store _ | Atomic_add _ -> ()
    | Nested n -> iter_stmts_pattern f level n.pat
    | If (_, t, e) ->
      List.iter stmt t;
      List.iter stmt e
    | For (_, _, _, b) | While (_, b) -> List.iter stmt b
  in
  List.iter stmt stmts

let iter_patterns f prog =
  let rec step = function
    | Launch n -> iter_stmts_pattern f 0 n.pat
    | Host_loop { body; _ } | While_flag { body; _ } -> List.iter step body
    | Swap _ -> ()
  in
  List.iter step prog.steps

let fold_patterns f init prog =
  let acc = ref init in
  iter_patterns (fun level p -> acc := f !acc level p) prog;
  !acc

(* ----- validation ----- *)

let validate prog =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* unique buffer names *)
  let names = List.map (fun b -> b.bname) prog.buffers in
  let rec dup = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then err "duplicate buffer %S" x;
      dup rest
  in
  dup names;
  (* unique pattern ids, nesting depth *)
  let seen = Hashtbl.create 16 in
  iter_patterns
    (fun level p ->
      if Hashtbl.mem seen p.pid then err "duplicate pattern id %d" p.pid;
      Hashtbl.replace seen p.pid ();
      if level > 2 then err "pattern %s nested deeper than 3 levels" p.label;
      (match p.size, level with
       | Sdyn _, 0 -> err "top-level pattern %s has a dynamic size" p.label
       | _ -> ()))
    prog;
  (* stores and binds *)
  let locals = Hashtbl.create 16 in
  iter_patterns
    (fun level p ->
      let bind_of_nested n =
        match n.bind, n.pat.kind with
        | None, (Map _ | Reduce _ | Arg_min _ | Filter _ | Group_by _) ->
          err "pattern %s produces a value but has no binding" n.pat.label
        | Some _, Foreach ->
          err "foreach pattern %s must not be bound" n.pat.label
        | Some b, Map _ when level >= 0 -> Hashtbl.replace locals b ()
        | Some b, _ -> Hashtbl.replace locals b ()
        | None, Foreach -> ()
      in
      let rec stmt = function
        | Let _ | Assign _ -> ()
        | Store (b, _, _) | Atomic_add (b, _, _) ->
          if (not (List.mem b names)) && not (Hashtbl.mem locals b) then
            err "store into unknown buffer %S (pattern %s)" b p.label
        | Nested n ->
          bind_of_nested n;
          List.iter stmt n.pat.body
        | If (_, t, e) ->
          List.iter stmt t;
          List.iter stmt e
        | For (_, _, _, b) | While (_, b) -> List.iter stmt b
      in
      (* locals bound by this pattern's own body become visible inside it *)
      List.iter stmt p.body)
    prog;
  (* top-level launches must bind globals when they produce values *)
  let rec step = function
    | Launch n -> (
      match n.bind, n.pat.kind with
      | Some b, _ when not (List.mem b names) ->
        err "launch of %s binds unknown buffer %S" n.pat.label b
      | None, (Map _ | Reduce _ | Arg_min _ | Filter _ | Group_by _) ->
        err "top-level pattern %s must bind an output buffer" n.pat.label
      | _ -> ())
    | Host_loop { body; _ } | While_flag { body; _ } -> List.iter step body
    | Swap (a, b) ->
      if not (List.mem a names) then err "swap of unknown buffer %S" a;
      if not (List.mem b names) then err "swap of unknown buffer %S" b
  in
  List.iter step prog.steps;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(* ----- printing ----- *)

let pp_psize ppf = function
  | Sconst n -> Format.fprintf ppf "%d" n
  | Sparam s -> Format.fprintf ppf "$%s" s
  | Sexp e -> Format.fprintf ppf "%a" Exp.pp e
  | Sdyn e -> Format.fprintf ppf "dyn(%a)" Exp.pp e

let kind_name = function
  | Map _ -> "map"
  | Reduce _ -> "reduce"
  | Arg_min _ -> "argmin"
  | Foreach -> "foreach"
  | Filter _ -> "filter"
  | Group_by _ -> "groupBy"

let rec pp_stmt ppf = function
  | Let (x, e) -> Format.fprintf ppf "@[<h>%s = %a@]" x Exp.pp e
  | Assign (x, e) -> Format.fprintf ppf "@[<h>%s := %a@]" x Exp.pp e
  | Store (b, idxs, e) ->
    Format.fprintf ppf "@[<h>%s[%a] <- %a@]" b
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Exp.pp)
      idxs Exp.pp e
  | Atomic_add (b, idxs, e) ->
    Format.fprintf ppf "@[<h>atomic %s[%a] += %a@]" b
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Exp.pp)
      idxs Exp.pp e
  | Nested { bind; pat } ->
    (match bind with
     | Some b -> Format.fprintf ppf "@[<v 2>%s = %a@]" b pp_pattern pat
     | None -> pp_pattern ppf pat)
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" Exp.pp c pp_stmts t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" Exp.pp
      c pp_stmts t pp_stmts e
  | For (x, lo, hi, b) ->
    Format.fprintf ppf "@[<v 2>for %s in [%a, %a) {@,%a@]@,}" x Exp.pp lo
      Exp.pp hi pp_stmts b
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" Exp.pp c pp_stmts b

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

and pp_pattern ppf p =
  let yield ppf =
    match p.kind with
    | Map { yield } -> Format.fprintf ppf "yield %a" Exp.pp yield
    | Reduce { yield; r } ->
      Format.fprintf ppf "yield %a  (combine: %a)" Exp.pp yield Exp.pp
        r.combine
    | Arg_min { yield } -> Format.fprintf ppf "argmin of %a" Exp.pp yield
    | Foreach -> Format.fprintf ppf ""
    | Filter { pred; yield } ->
      Format.fprintf ppf "if %a yield %a" Exp.pp pred Exp.pp yield
    | Group_by { key; value; num_keys } ->
      Format.fprintf ppf "key %a -> %a (keys: %a)" Exp.pp key Exp.pp value
        Ty.pp_extent num_keys
  in
  Format.fprintf ppf "@[<v 2>%s<%s> i%d in [0, %a) {@,%a%s%t@]@,}"
    (kind_name p.kind) p.label p.pid pp_psize p.size pp_stmts p.body
    (if p.body = [] then "" else "; ")
    yield

let rec pp_step ppf = function
  | Launch { bind; pat } ->
    (match bind with
     | Some b -> Format.fprintf ppf "@[<v 2>launch %s = %a@]" b pp_pattern pat
     | None -> Format.fprintf ppf "@[<v 2>launch %a@]" pp_pattern pat)
  | Host_loop { var; count; body } ->
    Format.fprintf ppf "@[<v 2>host for %s in [0, %a) {@,%a@]@,}" var
      Ty.pp_extent count
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step)
      body
  | Swap (a, b) -> Format.fprintf ppf "swap %s <-> %s" a b
  | While_flag { flag; max_iter; body } ->
    Format.fprintf ppf "@[<v 2>host while %s[0] != 0 (max %d) {@,%a@]@,}" flag
      max_iter
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step)
      body

let pp_prog ppf prog =
  Format.fprintf ppf "@[<v>program %s@," prog.pname;
  List.iter
    (fun b ->
      Format.fprintf ppf "buffer %s : %a[%a] %s@," b.bname Ty.pp_scalar b.elem
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Ty.pp_extent)
        b.dims
        (match b.bkind with
         | Input -> "(in)"
         | Output -> "(out)"
         | Temp -> "(tmp)"))
    prog.buffers;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step ppf prog.steps;
  Format.fprintf ppf "@]"
