lib/ir/access.ml: Exp Format Levels List Option Pat Printf String Ty
