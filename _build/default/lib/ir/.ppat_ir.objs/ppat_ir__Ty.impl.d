lib/ir/ty.ml: Format List
