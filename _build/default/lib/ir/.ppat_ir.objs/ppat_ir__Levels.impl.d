lib/ir/levels.ml: Array Exp List Pat
