lib/ir/access.mli: Exp Format Pat
