lib/ir/builder.ml: Exp Pat
