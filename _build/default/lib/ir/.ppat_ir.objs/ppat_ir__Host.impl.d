lib/ir/host.ml: Array Float Format List Pat Printf Ty
