lib/ir/exp.ml: Format List Option String
