lib/ir/host.mli: Format Pat
