lib/ir/builder.mli: Exp Pat Ty
