lib/ir/levels.mli: Pat
