lib/ir/pat.mli: Exp Format Ty
