lib/ir/exp.mli: Format
