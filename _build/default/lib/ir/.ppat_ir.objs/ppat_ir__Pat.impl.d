lib/ir/pat.ml: Exp Format Hashtbl List Printf String Ty
