(** Thin eDSL for writing pattern-IR programs — the "data parallel language
    that provides a thin wrapper around the IR" of paper Section III.

    A builder owns a pattern-id counter so applications never hand-pick ids.
    Typical use:
    {[
      let b = Builder.create () in
      let sum_rows =
        Builder.map b ~label:"rows" ~size:(Sparam "R") (fun r ->
          `Yield (Builder.reduce_exp b ~size:(Sparam "C")
                    (fun c -> Exp.Read ("m", [r; c]))))
    ]} *)

type t

val create : unit -> t
val fresh_pid : t -> int

val map :
  t ->
  ?label:string ->
  size:Pat.psize ->
  (Exp.t -> Pat.stmt list * Exp.t) ->
  Pat.pattern
(** [map b ~size f] builds a Map pattern; [f] receives the index variable and
    returns the body statements and the yield expression. *)

val zip_with :
  t ->
  ?label:string ->
  size:Pat.psize ->
  string ->
  string ->
  (Exp.t -> Exp.t -> Exp.t) ->
  Pat.pattern
(** [zip_with b ~size a c f] is Table I's zipWith: a Map whose element i is
    [f a.(i) c.(i)]. *)

val reduce :
  t ->
  ?label:string ->
  ?r:Pat.reducer ->
  size:Pat.psize ->
  (Exp.t -> Pat.stmt list * Exp.t) ->
  Pat.pattern
(** Reduce with combiner [r] (default {!Pat.sum_reducer}). *)

val arg_min :
  t ->
  ?label:string ->
  size:Pat.psize ->
  (Exp.t -> Pat.stmt list * Exp.t) ->
  Pat.pattern

val foreach :
  t -> ?label:string -> size:Pat.psize -> (Exp.t -> Pat.stmt list) ->
  Pat.pattern

val filter :
  t ->
  ?label:string ->
  size:Pat.psize ->
  pred:(Exp.t -> Exp.t) ->
  (Exp.t -> Exp.t) ->
  Pat.pattern

val group_by :
  t ->
  ?label:string ->
  size:Pat.psize ->
  num_keys:Ty.extent ->
  key:(Exp.t -> Exp.t) ->
  (Exp.t -> Exp.t) ->
  Pat.pattern

val bind : string -> Pat.pattern -> Pat.stmt
(** [bind x p] nests pattern [p] in an enclosing body, binding its result. *)

val nest : Pat.pattern -> Pat.stmt
(** Nest an effectful (Foreach) pattern. *)
