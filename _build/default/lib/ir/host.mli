(** Host-side data: concrete buffer contents fed to both the CPU reference
    interpreter and the simulated GPU, plus runtime parameter environments. *)

type buf =
  | F of float array  (** contents of an [F64] buffer *)
  | I of int array  (** contents of an [I32] or [Bool] buffer *)

type data = (string * buf) list

val params_of : Pat.prog -> (string * int) list -> (string * int) list
(** Merge caller-supplied parameter bindings over the program defaults;
    caller bindings win. *)

val buffer_elems : (string * int) list -> Pat.buffer -> int
(** Total element count of a buffer under a parameter environment. *)

val alloc_all : Pat.prog -> (string * int) list -> data -> data
(** Allocation plan for a run: every program buffer, taking contents from
    [data] when provided (shapes validated) and zero-filled otherwise.
    The result is freshly copied so callers can reuse [data] across runs. *)

val get_f : data -> string -> float array
(** @raise Invalid_argument if absent or of integer type. *)

val get_i : data -> string -> int array
(** @raise Invalid_argument if absent or of float type. *)

val copy : data -> data

val approx_equal : ?eps:float -> buf -> buf -> bool
(** Element-wise comparison; floats compared with relative/absolute
    tolerance [eps] (default 1e-9), suitable for checking the simulated GPU
    result against the CPU oracle when reduction orders differ. *)

val pp_buf : Format.formatter -> buf -> unit
