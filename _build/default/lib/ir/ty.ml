type scalar = I32 | F64 | Bool
type extent = Const of int | Param of string

let scalar_bytes = function I32 -> 4 | F64 -> 8 | Bool -> 4

let pp_scalar ppf s =
  Format.pp_print_string ppf
    (match s with I32 -> "i32" | F64 -> "f64" | Bool -> "bool")

let pp_extent ppf = function
  | Const n -> Format.fprintf ppf "%d" n
  | Param p -> Format.pp_print_string ppf p

let extent_value params = function
  | Const n -> n
  | Param p -> List.assoc p params

let equal_scalar (a : scalar) (b : scalar) = a = b
