type t = { mutable next : int }

let create () = { next = 0 }

let fresh_pid b =
  let n = b.next in
  b.next <- n + 1;
  n

let with_idx b f =
  let pid = fresh_pid b in
  let body, yield = f (Exp.Idx pid) in
  (pid, body, yield)

let map b ?label ~size f =
  let pid, body, yield = with_idx b f in
  Pat.pattern ?label ~pid ~size ~kind:(Pat.Map { yield }) body

let zip_with b ?label ~size arr1 arr2 f =
  let pid = fresh_pid b in
  let i = Exp.Idx pid in
  let yield = f (Exp.Read (arr1, [ i ])) (Exp.Read (arr2, [ i ])) in
  Pat.pattern ?label ~pid ~size ~kind:(Pat.Map { yield }) []

let reduce b ?label ?(r = Pat.sum_reducer) ~size f =
  let pid, body, yield = with_idx b f in
  Pat.pattern ?label ~pid ~size ~kind:(Pat.Reduce { yield; r }) body

let arg_min b ?label ~size f =
  let pid, body, yield = with_idx b f in
  Pat.pattern ?label ~pid ~size ~kind:(Pat.Arg_min { yield }) body

let foreach b ?label ~size f =
  let pid = fresh_pid b in
  let body = f (Exp.Idx pid) in
  Pat.pattern ?label ~pid ~size ~kind:Pat.Foreach body

let filter b ?label ~size ~pred f =
  let pid = fresh_pid b in
  let i = Exp.Idx pid in
  Pat.pattern ?label ~pid ~size
    ~kind:(Pat.Filter { pred = pred i; yield = f i })
    []

let group_by b ?label ~size ~num_keys ~key f =
  let pid = fresh_pid b in
  let i = Exp.Idx pid in
  Pat.pattern ?label ~pid ~size
    ~kind:(Pat.Group_by { key = key i; value = f i; num_keys })
    []

let bind x p = Pat.Nested { bind = Some x; pat = p }
let nest p = Pat.Nested { bind = None; pat = p }
