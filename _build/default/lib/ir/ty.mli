(** Scalar types and array extents of the pattern IR (paper Section III).

    The IR supports scalars, arrays and structs-of-arrays; structs are
    represented as separate named buffers sharing an index space (e.g. a CSR
    graph is three buffers), so the type language itself only needs scalar
    element types and per-dimension extents. *)

(** Element type of a scalar value or array element. *)
type scalar =
  | I32  (** 32-bit integers (indices, counters, flags) *)
  | F64  (** double-precision floats (all numeric kernels) *)
  | Bool  (** booleans (predicates, visited flags) *)

(** A static array extent: either a compile-time constant or a named runtime
    parameter whose value is supplied at launch time. *)
type extent =
  | Const of int
  | Param of string

val scalar_bytes : scalar -> int
(** Size in bytes of one element when stored in simulated device memory.
    [I32] and [Bool] occupy 4 bytes, [F64] occupies 8. *)

val pp_scalar : Format.formatter -> scalar -> unit
val pp_extent : Format.formatter -> extent -> unit

val extent_value : (string * int) list -> extent -> int
(** [extent_value params e] resolves [e] against the runtime parameter
    environment. @raise Not_found if a parameter is unbound. *)

val equal_scalar : scalar -> scalar -> bool
