type stride = Known of int | Unknown

type access = {
  abuf : string;
  aidxs : Exp.t list;
  alocal : bool;
  is_store : bool;
  strides : (int * stride) list;
  weight : float;
  branch_depth : int;
}

(* Execution-count factor assumed for sequential loops whose trip count is
   not a launch-time constant (data-dependent while loops, CSR row spans). *)
let default_seq_trip = 16.

let rec eval_int ~params ~env (e : Exp.t) =
  let both f a b =
    match eval_int ~params ~env a, eval_int ~params ~env b with
    | Some x, Some y -> f x y
    | _ -> None
  in
  match e with
  | Exp.Int n -> Some n
  | Exp.Param p -> List.assoc_opt p params
  | Exp.Var x -> (
    match List.assoc_opt x env with
    | Some (`E e') -> eval_int ~params ~env e'
    | Some `Opaque | None -> None)
  | Exp.Bin (Exp.Add, a, b) -> both (fun x y -> Some (x + y)) a b
  | Exp.Bin (Exp.Sub, a, b) -> both (fun x y -> Some (x - y)) a b
  | Exp.Bin (Exp.Mul, a, b) -> both (fun x y -> Some (x * y)) a b
  | Exp.Bin (Exp.Div, a, b) ->
    both (fun x y -> if y = 0 then None else Some (x / y)) a b
  | Exp.Bin (Exp.Mod, a, b) ->
    both (fun x y -> if y = 0 then None else Some (x mod y)) a b
  | Exp.Bin (Exp.Min, a, b) -> both (fun x y -> Some (min x y)) a b
  | Exp.Bin (Exp.Max, a, b) -> both (fun x y -> Some (max x y)) a b
  | Exp.Un (Exp.Neg, a) ->
    Option.map (fun x -> -x) (eval_int ~params ~env a)
  | _ -> None

let rec stride_of ~params ~env ~wrt (e : Exp.t) =
  let d x = stride_of ~params ~env ~wrt x in
  let zero_if_const parts =
    if List.for_all (fun x -> d x = Known 0) parts then Known 0 else Unknown
  in
  match e with
  | Exp.Int _ | Exp.Float _ | Exp.Bool _ | Exp.Param _ | Exp.Len _ -> Known 0
  | Exp.Idx q -> Known (if q = wrt then 1 else 0)
  | Exp.Var x -> (
    match List.assoc_opt x env with
    | Some (`E e') -> stride_of ~params ~env ~wrt e'
    | Some `Opaque | None -> Unknown)
  | Exp.Bin (Exp.Add, a, b) -> (
    match d a, d b with
    | Known x, Known y -> Known (x + y)
    | _ -> Unknown)
  | Exp.Bin (Exp.Sub, a, b) -> (
    match d a, d b with
    | Known x, Known y -> Known (x - y)
    | _ -> Unknown)
  | Exp.Bin (Exp.Mul, a, b) -> (
    match eval_int ~params ~env a, eval_int ~params ~env b with
    | Some ka, _ -> (
      match d b with Known y -> Known (ka * y) | Unknown -> Unknown)
    | _, Some kb -> (
      match d a with Known x -> Known (x * kb) | Unknown -> Unknown)
    | None, None -> zero_if_const [ a; b ])
  | Exp.Bin ((Exp.Div | Exp.Mod | Exp.Min | Exp.Max | Exp.And | Exp.Or), a, b)
    ->
    zero_if_const [ a; b ]
  | Exp.Un (Exp.Neg, a) -> (
    match d a with Known x -> Known (-x) | Unknown -> Unknown)
  | Exp.Un (_, a) -> zero_if_const [ a ]
  | Exp.Cmp (_, a, b) -> zero_if_const [ a; b ]
  | Exp.Select (c, a, b) -> zero_if_const [ c; a; b ]
  | Exp.Read (_, idxs) -> zero_if_const idxs

let linearize ~params (b : Pat.buffer) idxs =
  let dims = List.map (Ty.extent_value params) b.dims in
  if List.length idxs <> List.length dims then
    invalid_arg
      (Printf.sprintf "linearize: buffer %S has %d dims, %d indices given"
         b.bname (List.length dims) (List.length idxs));
  let pairs =
    match b.blayout with
    | Pat.Row_major -> List.combine idxs dims
    | Pat.Col_major -> List.rev (List.combine idxs dims)
  in
  (* after ordering, index i varies slowest-first: lin = ((e0*d1)+e1)*d2 ... *)
  match pairs with
  | [] -> Exp.Int 0
  | (e0, _) :: rest ->
    List.fold_left
      (fun acc (e, d) -> Exp.Bin (Exp.Add, Exp.Bin (Exp.Mul, acc, Exp.Int d), e))
      e0 rest

(* Collect all accesses of one top-level nest. *)
let collect ~params (prog : Pat.prog) (top : Pat.pattern) =
  let params =
    params @ List.filter (fun (k, _) -> not (List.mem_assoc k params))
               prog.defaults
  in
  let out = ref [] in
  let is_global name =
    List.exists (fun (b : Pat.buffer) -> String.equal b.bname name)
      prog.buffers
  in
  let emit ~env ~pids ~weight ~branch ~is_store name idxs =
    let alocal = not (is_global name) in
    let lin =
      if alocal then (
        match idxs with
        | [ e ] -> e
        | _ ->
          (* local arrays are one-dimensional (one per producing pattern) *)
          invalid_arg
            (Printf.sprintf "access: local array %S used with %d indices"
               name (List.length idxs)))
      else linearize ~params (Pat.find_buffer prog name) idxs
    in
    let strides =
      List.map
        (fun (pid, _) -> (pid, stride_of ~params ~env ~wrt:pid lin))
        pids
    in
    (* loop-invariant hoisting: an access whose index does not vary with the
       innermost enclosing pattern(s) executes once per iteration of the
       deepest pattern it does depend on (any real compiler keeps it in a
       register), so its weight must not be scaled by the invariant loops *)
    let rec hoist acc = function
      | (pid, size) :: rest ->
        (match List.assoc pid strides with
         | Known 0 -> hoist (acc *. size) rest
         | Known _ | Unknown -> acc)
      | [] -> acc
    in
    let weight = weight /. hoist 1. (List.rev pids) in
    out :=
      { abuf = name; aidxs = idxs; alocal; is_store; strides; weight;
        branch_depth = branch }
      :: !out
  in
  let rec exp ~env ~pids ~weight ~branch (e : Exp.t) =
    match e with
    | Exp.Read (name, idxs) ->
      emit ~env ~pids ~weight ~branch ~is_store:false name idxs;
      List.iter (exp ~env ~pids ~weight ~branch) idxs
    | Exp.Int _ | Exp.Float _ | Exp.Bool _ | Exp.Idx _ | Exp.Param _
    | Exp.Var _ | Exp.Len _ ->
      ()
    | Exp.Bin (_, a, b) | Exp.Cmp (_, a, b) ->
      exp ~env ~pids ~weight ~branch a;
      exp ~env ~pids ~weight ~branch b
    | Exp.Un (_, a) -> exp ~env ~pids ~weight ~branch a
    | Exp.Select (c, a, b) ->
      exp ~env ~pids ~weight ~branch c;
      exp ~env ~pids ~weight ~branch a;
      exp ~env ~pids ~weight ~branch b
  in
  let rec stmts ~env ~pids ~weight ~branch ss =
    List.fold_left
      (fun env s -> stmt ~env ~pids ~weight ~branch s)
      env ss
  and stmt ~env ~pids ~weight ~branch (s : Pat.stmt) =
    let e_ = exp ~env ~pids ~weight ~branch in
    match s with
    | Pat.Let (x, e) ->
      e_ e;
      (x, `E e) :: env
    | Pat.Assign (x, e) ->
      e_ e;
      (* the variable no longer has a single defining expression *)
      (x, `Opaque) :: env
    | Pat.Store (name, idxs, e) | Pat.Atomic_add (name, idxs, e) ->
      emit ~env ~pids ~weight ~branch ~is_store:true name idxs;
      List.iter e_ idxs;
      e_ e;
      env
    | Pat.Nested n ->
      pattern ~env ~pids ~weight ~branch n.pat;
      (match n.bind, n.pat.kind with
       | Some _, Pat.Map _ -> env (* local array, not a scalar binding *)
       | Some x, _ -> (x, `Opaque) :: env
       | None, _ -> env)
    | Pat.If (c, t, e) ->
      e_ c;
      ignore (stmts ~env ~pids ~weight:(weight *. 0.5) ~branch:(branch + 1)
                t);
      ignore (stmts ~env ~pids ~weight:(weight *. 0.5) ~branch:(branch + 1)
                e);
      env
    | Pat.For (x, lo, hi, body) ->
      e_ lo;
      e_ hi;
      let trip =
        match
          eval_int ~params ~env lo, eval_int ~params ~env hi
        with
        | Some l, Some h -> float_of_int (max 1 (h - l))
        | _ -> default_seq_trip
      in
      (* approximate the loop variable by its first value for strides *)
      ignore
        (stmts ~env:((x, `E lo) :: env) ~pids ~weight:(weight *. trip)
           ~branch body);
      env
    | Pat.While (c, body) ->
      e_ c;
      ignore
        (stmts ~env ~pids ~weight:(weight *. default_seq_trip) ~branch
           body);
      env
  and pattern ~env ~pids ~weight ~branch (p : Pat.pattern) =
    let size = float_of_int (Levels.pattern_size params p) in
    let weight = weight *. size in
    let pids = pids @ [ (p.pid, size) ] in
    let env = stmts ~env ~pids ~weight ~branch p.body in
    let e_ = exp ~env ~pids ~weight ~branch in
    (match p.kind with
     | Pat.Map { yield } | Pat.Arg_min { yield } -> e_ yield
     | Pat.Reduce { yield; _ } -> e_ yield
     | Pat.Foreach -> ()
     | Pat.Filter { pred; yield } ->
       e_ pred;
       e_ yield
     | Pat.Group_by { key; value; _ } ->
       e_ key;
       e_ value)
  in
  pattern ~env:[] ~pids:[] ~weight:1. ~branch:0 top;
  List.rev !out

let pp_stride ppf = function
  | Known n -> Format.fprintf ppf "%d" n
  | Unknown -> Format.pp_print_string ppf "?"

let pp_access ppf a =
  Format.fprintf ppf "@[<h>%s%s %s strides:[%a] w:%g b:%d@]"
    (if a.is_store then "store " else "load ")
    (if a.alocal then "(local)" else "")
    a.abuf
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (pid, s) -> Format.fprintf ppf "i%d:%a" pid pp_stride s))
    a.strides a.weight a.branch_depth
