lib/core/mapping.mli: Format
