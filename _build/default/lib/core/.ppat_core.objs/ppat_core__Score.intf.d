lib/core/score.mli: Constr Mapping Ppat_gpu
