lib/core/constr.ml: Format List Printf String
