lib/core/constr.mli: Format
