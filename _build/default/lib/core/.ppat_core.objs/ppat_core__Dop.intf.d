lib/core/dop.mli: Mapping Ppat_gpu
