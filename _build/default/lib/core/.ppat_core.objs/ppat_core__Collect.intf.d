lib/core/collect.mli: Constr Format Ppat_gpu Ppat_ir
