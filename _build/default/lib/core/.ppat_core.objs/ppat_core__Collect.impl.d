lib/core/collect.ml: Access Array Constr Format Host Levels List Pat Ppat_gpu Ppat_ir String
