lib/core/strategy.mli: Collect Mapping Ppat_gpu
