lib/core/dop.ml: Array Mapping Ppat_gpu
