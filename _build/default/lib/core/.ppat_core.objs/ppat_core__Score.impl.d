lib/core/score.ml: Array Constr List Mapping Ppat_gpu
