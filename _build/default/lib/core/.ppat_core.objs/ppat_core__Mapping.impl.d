lib/core/mapping.ml: Array Format String
