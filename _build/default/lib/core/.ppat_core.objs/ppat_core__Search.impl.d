lib/core/search.ml: Array Collect Dop Float List Mapping Ppat_gpu Printf Score
