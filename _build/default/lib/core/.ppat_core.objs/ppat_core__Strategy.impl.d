lib/core/strategy.ml: Array Collect List Mapping Printf Score Search
