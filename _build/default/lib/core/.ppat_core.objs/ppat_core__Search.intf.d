lib/core/search.mli: Collect Mapping Ppat_gpu
