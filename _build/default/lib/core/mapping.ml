type dim = X | Y | Z
type span = Span of int | Span_all | Split of int
type decision = { dim : dim; bsize : int; span : span }
type t = decision array

let span1 = Span 1
let dims = [ X; Y; Z ]
let dim_index = function X -> 0 | Y -> 1 | Z -> 2
let dim_name = function X -> "x" | Y -> "y" | Z -> "z"

let threads_per_block (m : t) =
  Array.fold_left (fun acc d -> acc * d.bsize) 1 m

let cdiv a b = (a + b - 1) / b

let dop ~sizes (m : t) =
  let level l (d : decision) =
    let size = sizes.(l) in
    match d.span with
    | Span n -> max 1 (cdiv size (max 1 n))
    | Span_all -> min d.bsize (max 1 size)
    | Split k -> min (d.bsize * k) (max 1 size)
  in
  let acc = ref 1 in
  Array.iteri (fun l d -> acc := !acc * level l d) m;
  !acc

let level_of_dim (m : t) dim =
  let found = ref None in
  Array.iteri (fun l d -> if d.dim = dim && !found = None then found := Some l) m;
  !found

let block_extent (m : t) dim =
  match level_of_dim m dim with None -> 1 | Some l -> m.(l).bsize

let grid_extent ~sizes (m : t) dim =
  match level_of_dim m dim with
  | None -> 1
  | Some l -> (
    let size = max 1 sizes.(l) in
    match m.(l).span with
    | Span n -> max 1 (cdiv size (m.(l).bsize * max 1 n))
    | Span_all -> 1
    | Split k -> k)

let equal (a : t) (b : t) = a = b

let pp_span ppf = function
  | Span 1 -> Format.pp_print_string ppf "span(1)"
  | Span n -> Format.fprintf ppf "span(%d)" n
  | Span_all -> Format.pp_print_string ppf "span(all)"
  | Split k -> Format.fprintf ppf "split(%d)" k

let pp ppf (m : t) =
  Array.iteri
    (fun l d ->
      Format.fprintf ppf "%sL%d:[Dim%s, %d, %a]"
        (if l = 0 then "" else " ")
        l
        (String.uppercase_ascii (dim_name d.dim))
        d.bsize pp_span d.span)
    m

let to_string m = Format.asprintf "%a" pp m
