(** Mapping constraints (paper Section IV-C, Table II).

    Constraints come in two orthogonal categories: scope (local to one
    pattern / global across patterns of a level) and weight (hard — must
    hold for correctness; soft — scored performance hints). Hard span
    requirements are merged per level at collection time (the
    "most conservative span" global hard constraint); the block-size limits
    of the device are enforced during candidate generation; soft
    constraints carry derived weights (intrinsic weight x execution count,
    Figure 8) and are summed by {!Score}. *)

(** Why a level is forced to Span(all). *)
type span_all_reason =
  | Global_sync of string
      (** the named pattern needs cross-block synchronisation to produce its
          result (Reduce, Arg_min, Filter, Group_by) *)
  | Dynamic_size of string
      (** the named pattern's size is unknown at launch time *)

type soft =
  | Coalesce of {
      strides : (int * int option) list;
          (** per level: [Some s] = known element stride of the access in
              that level's index, [None] = data-dependent *)
      buf : string;
      weight : float;
    }
      (** one constraint per qualifying access: satisfied when the level on
          dimension x steps the address by one element (true coalescing,
          requiring a warp-multiple block size) or by zero (a warp
          broadcast, a single transaction on real hardware) *)
  | Min_block of { weight : float }
      (** total threads per block at least {!Ppat_gpu.Device.min_block_size} *)
  | Fit of { level : int; size : int; weight : float }
      (** the level's block size should not overshoot the level's domain
          (idle threads waste occupancy); satisfied when
          bsize <= max(warp, next power of two of the size) *)
  | Lean_reduce of { level : int; weight : float }
      (** a level that needs intra-block combining (Reduce and friends)
          pays one shared-memory tree round plus barrier per log2(bsize);
          when outer parallelism is available the tree should stay narrow —
          satisfied when bsize <= the warp size. This is what makes the
          search reproduce the [DimY,64]/[DimX,32] choice of paper Figure 9
          instead of a 1024-wide tree. Only emitted for nests with more
          than one level. *)

val intrinsic_coalesce : float
(** Highest intrinsic weight — "applications written using parallel
    patterns are often bandwidth limited" (Section IV-C). *)

val intrinsic_min_block : float
val intrinsic_fit : float
val intrinsic_lean_reduce : float

val soft_weight : soft -> float
val pp_soft : Format.formatter -> soft -> unit
val pp_reason : Format.formatter -> span_all_reason -> unit
