(** Scoring of candidate mappings: the sum of the weights of the satisfied
    soft constraints (paper Algorithm 1, lines 21-26). *)

val soft_satisfied :
  Ppat_gpu.Device.t -> Mapping.t -> Constr.soft -> bool
(** - [Coalesce]: the access's stride in the x-assigned level is one
      element (with a warp-multiple block size) or zero (warp broadcast);
    - [Min_block]: total threads per block at least
      {!Ppat_gpu.Device.min_block_size};
    - [Fit]: the level's block size is at most
      max(warp size, next power of two of the level size);
    - [Lean_reduce]: the level's block size is at most twice the warp
      size. *)

val score : Ppat_gpu.Device.t -> Constr.soft list -> Mapping.t -> float

val next_pow2 : int -> int
