(** Degree-of-parallelism control (paper Algorithm 1, ControlDOP).

    After the constraint search picks the best-scoring mapping, the DOP is
    adjusted against the device targets: if fewer than MIN_DOP threads
    would run, a Span(all) level is split into k sections (Split(k) plus a
    combiner kernel); if more than MAX_DOP would run, a Span(1) level is
    coarsened to Span(n). Sizes are the actual launch-time sizes, which is
    the "dynamic decision" half of the paper's static/dynamic split. *)

val control :
  Ppat_gpu.Device.t -> sizes:int array -> Mapping.t -> Mapping.t
(** Returns a copy with at most one span replaced. The split count is
    capped so every section still covers at least one block of work, and
    the span factor so every thread still has at least one point. *)
