open Ppat_ir

type t = {
  levels : Levels.t;
  level_sizes : int array;
  span_all_required : Constr.span_all_reason option array;
  softs : Constr.soft list;
  accesses : Access.access list;
}

let needs_global_sync (p : Pat.pattern) =
  match p.kind with
  | Pat.Reduce _ | Pat.Arg_min _ | Pat.Filter _ | Pat.Group_by _ -> true
  | Pat.Map _ | Pat.Foreach -> false

let collect ?(params = []) ?bind dev (prog : Pat.prog) (top : Pat.pattern) =
  let params = Host.params_of prog params in
  let levels = Levels.of_top top in
  let nlevels = levels.depth in
  let level_sizes =
    Array.init nlevels (fun l -> Levels.level_size params levels l)
  in
  (* hard: span(all) requirements, merged per level *)
  let span_all_required = Array.make nlevels None in
  Array.iteri
    (fun l pats ->
      List.iter
        (fun (p : Pat.pattern) ->
          let set r =
            if span_all_required.(l) = None then span_all_required.(l) <- Some r
          in
          if needs_global_sync p then set (Constr.Global_sync p.label);
          match p.size with
          | Pat.Sdyn _ -> set (Constr.Dynamic_size p.label)
          | Pat.Sconst _ | Pat.Sparam _ | Pat.Sexp _ -> ())
        pats)
    levels.per_level;
  (* soft: coalescing from stride-1 accesses *)
  let accesses = Access.collect ~params prog top in
  let coalesce =
    List.filter_map
      (fun (a : Access.access) ->
        if a.alocal then None
        else begin
          let strides =
            List.map
              (fun (pid, s) ->
                ( Levels.level_of levels pid,
                  match s with
                  | Access.Known v -> Some v
                  | Access.Unknown -> None ))
              a.strides
          in
          (* only accesses that can actually coalesce constrain the
             mapping; everything else scores the same under any choice *)
          if List.exists (fun (_, s) -> s = Some 1) strides then
            Some
              (Constr.Coalesce
                 {
                   strides;
                   buf = a.abuf;
                   weight = Constr.intrinsic_coalesce *. a.weight;
                 })
          else None
        end)
      accesses
  in
  let total_work =
    Array.fold_left (fun acc s -> acc *. float_of_int s) 1. level_sizes
  in
  (* the implicit output store of a bound top-level Map writes out[i0]:
     stride 1 in level 0 *)
  let out_coalesce =
    match top.kind, bind with
    | Pat.Map _, Some out
      when List.exists (fun (b : Pat.buffer) -> b.bname = out) prog.buffers
      ->
      [
        Constr.Coalesce
          {
            strides =
              List.init nlevels (fun l -> (l, if l = 0 then Some 1 else Some 0));
            buf = out;
            weight =
              Constr.intrinsic_coalesce *. float_of_int level_sizes.(0);
          };
      ]
    | _ -> []
  in
  (* a narrow reduction tree only pays off when the other levels supply
     enough blocks to saturate the device; with scarce outer parallelism a
     wide intra-block tree is the only source of occupancy *)
  let outer_work_of l =
    Array.to_list level_sizes
    |> List.filteri (fun i _ -> i <> l)
    |> List.fold_left ( * ) 1
  in
  let lean_threshold =
    Ppat_gpu.Device.min_dop dev / dev.Ppat_gpu.Device.warp_size
  in
  let lean_reduces =
    if nlevels < 2 then []
    else
      List.filter_map
        (fun l ->
          match span_all_required.(l) with
          | Some (Constr.Global_sync _) when outer_work_of l >= lean_threshold
            ->
            Some
              (Constr.Lean_reduce
                 { level = l; weight = Constr.intrinsic_lean_reduce *. total_work })
          | _ -> None)
        (List.init nlevels (fun i -> i))
  in
  let min_block =
    Constr.Min_block { weight = Constr.intrinsic_min_block *. total_work }
  in
  let fits =
    List.init nlevels (fun l ->
        Constr.Fit
          {
            level = l;
            size = level_sizes.(l);
            weight = Constr.intrinsic_fit *. total_work;
          })
  in
  {
    levels;
    level_sizes;
    span_all_required;
    softs = coalesce @ out_coalesce @ lean_reduces @ (min_block :: fits);
    accesses;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>levels: %d, sizes: [%s]@," t.levels.depth
    (String.concat "; "
       (Array.to_list (Array.map string_of_int t.level_sizes)));
  Array.iteri
    (fun l r ->
      match r with
      | Some reason ->
        Format.fprintf ppf "hard: L%d span(all) — %a@," l Constr.pp_reason
          reason
      | None -> ())
    t.span_all_required;
  List.iter (fun s -> Format.fprintf ppf "soft: %a@," Constr.pp_soft s) t.softs;
  Format.fprintf ppf "@]"
