let cdiv a b = (a + b - 1) / b

let control (dev : Ppat_gpu.Device.t) ~sizes (m : Mapping.t) =
  let m = Array.copy m in
  let current = Mapping.dop ~sizes m in
  let min_dop = Ppat_gpu.Device.min_dop dev in
  let max_dop = Ppat_gpu.Device.max_dop dev in
  if current < min_dop then begin
    (* pick the Span(all) level with the most recoverable parallelism *)
    let best = ref None in
    Array.iteri
      (fun l (d : Mapping.decision) ->
        if d.span = Mapping.Span_all then begin
          let gain = cdiv sizes.(l) (max 1 d.bsize) in
          match !best with
          | Some (_, g) when g >= gain -> ()
          | _ -> best := Some (l, gain)
        end)
      m;
    match !best with
    | Some (l, gain) when gain > 1 ->
      let k = min gain (cdiv min_dop (max 1 current)) in
      if k >= 2 then m.(l) <- { (m.(l)) with span = Mapping.Split k }
    | _ -> ()
  end
  else if current > max_dop then begin
    (* coarsen the Span(1) level with the largest size *)
    let best = ref None in
    Array.iteri
      (fun l (d : Mapping.decision) ->
        if d.span = Mapping.Span 1 then
          match !best with
          | Some (_, s) when s >= sizes.(l) -> ()
          | _ -> best := Some (l, sizes.(l)))
      m;
    match !best with
    | Some (l, size) ->
      let n = min size (cdiv current max_dop) in
      if n >= 2 then m.(l) <- { (m.(l)) with span = Mapping.Span n }
    | None -> ()
  end;
  m
