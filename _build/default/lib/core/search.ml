type result = {
  mapping : Mapping.t;
  raw_mapping : Mapping.t;
  score : float;
  dop : int;
  candidates : int;
}

let block_size_candidates (dev : Ppat_gpu.Device.t) =
  let rec go n = if n > dev.max_threads_per_block then [] else n :: go (2 * n) in
  go 1

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let iter_candidates dev (c : Collect.t) f =
  let nlevels = c.levels.depth in
  if nlevels > List.length Mapping.dims then
    invalid_arg
      (Printf.sprintf "search: %d levels exceed the %d logical dimensions"
         nlevels (List.length Mapping.dims));
  let dim_assignments = permutations (take nlevels Mapping.dims) in
  let bsizes = block_size_candidates dev in
  let spans_for l =
    match c.span_all_required.(l) with
    | Some _ -> [ Mapping.Span_all ]
    | None -> [ Mapping.span1; Mapping.Span_all ]
  in
  (* enumerate per-level (bsize, span) choices depth-first *)
  let rec levels l acc dims =
    if l = nlevels then begin
      let m = Array.of_list (List.rev acc) in
      if Mapping.threads_per_block m <= dev.max_threads_per_block then f m
    end
    else
      match dims with
      | [] -> assert false
      | dim :: dims_rest ->
        List.iter
          (fun bsize ->
            if bsize <= dev.max_block_dim then
              List.iter
                (fun span ->
                  levels (l + 1)
                    ({ Mapping.dim; bsize; span } :: acc)
                    dims_rest)
                (spans_for l))
          bsizes
  in
  List.iter (fun dims -> levels 0 [] dims) dim_assignments

let enumerate dev (c : Collect.t) =
  let out = ref [] in
  iter_candidates dev c (fun m ->
      out := (Array.copy m, Score.score dev c.softs m) :: !out);
  List.rev !out

let search dev (c : Collect.t) =
  let best = ref None in
  let count = ref 0 in
  iter_candidates dev c (fun m ->
      incr count;
      let s = Score.score dev c.softs m in
      let d = Mapping.dop ~sizes:c.level_sizes m in
      (* ties prefer blocks near 256 threads: large enough to fill an SM
         with few blocks, small enough to spread across SMs on small
         grids *)
      let t =
        let tpb = Mapping.threads_per_block m in
        abs
          (int_of_float (Float.round (Float.log2 (float_of_int tpb))) - 8)
      in
      match !best with
      | None -> best := Some (Array.copy m, s, d, t)
      | Some (_, bs, bd, bt) ->
        if
          s > bs
          || (s = bs && d > bd)
          || (s = bs && d = bd && t < bt)
        then best := Some (Array.copy m, s, d, t));
  match !best with
  | None -> failwith "search: no hard-feasible mapping"
  | Some (raw, score, _, _) ->
    let mapping = Dop.control dev ~sizes:c.level_sizes raw in
    {
      mapping;
      raw_mapping = raw;
      score;
      dop = Mapping.dop ~sizes:c.level_sizes mapping;
      candidates = !count;
    }
