(** Constraint collection: traverse one top-level nest and derive the
    constraint set the search optimises over (paper Section IV-C).

    - Every Reduce / Arg_min / Filter / Group_by pattern adds a hard
      Span(all) requirement at its level (its result needs combining across
      all indices of the level); so does any pattern whose size is unknown
      at launch. Requirements of patterns sharing a level are merged — the
      conservative-span global hard constraint of Table II.
    - Every stride-1 global-memory access adds a Coalesce soft constraint
      for the level whose index advances the address by one element, with
      derived weight [intrinsic x execution count] (Figure 8). Accesses to
      pattern-local arrays are skipped: their physical layout is chosen
      after mapping by the pre-allocation optimisation (Section V-A).
    - A Min_block soft constraint and per-level Fit soft constraints model
      resource utilisation. *)

type t = {
  levels : Ppat_ir.Levels.t;
  level_sizes : int array;  (** resolved with launch parameters *)
  span_all_required : Constr.span_all_reason option array;  (** per level *)
  softs : Constr.soft list;
  accesses : Ppat_ir.Access.access list;  (** raw analysis, for reporting *)
}

val collect :
  ?params:(string * int) list ->
  ?bind:string ->
  Ppat_gpu.Device.t ->
  Ppat_ir.Pat.prog ->
  Ppat_ir.Pat.pattern ->
  t
(** Analyse the nest rooted at the given top-level pattern. [params]
    resolves sizes (defaults apply, then {!Ppat_ir.Levels.default_dyn_size}
    for dynamic sizes). [bind] is the output buffer of a bound top-level
    pattern; a Map's implicit store out[i0] contributes a level-0
    coalescing constraint. *)

val pp : Format.formatter -> t -> unit
