(** Mapping parameters for nested patterns (paper Section IV-A).

    A mapping assigns to every nest level a {e logical dimension}, a
    {e block size} and a {e degree-of-parallelism control} (Span/Split):

    - the dimension orders levels by how fast their thread indices vary
      (x fastest — the dimension whose adjacent indices are adjacent
      hardware threads, hence the one that coalesces);
    - the block size is the number of threads the CUDA block spends on the
      level; the block's total threads is the product over levels;
    - Span(1) parallelises every index; Span(n) makes each thread cover n
      points; Span(all) covers the whole level with one block (required
      when the level needs cross-block synchronisation or its size is
      unknown at launch); Split(k) relaxes Span(all) into k blocks plus a
      combiner kernel. *)

type dim = X | Y | Z

type span =
  | Span of int  (** Span(n); Span(1) is full parallelisation *)
  | Span_all
  | Split of int  (** k >= 2 sections + combiner kernel *)

type decision = { dim : dim; bsize : int; span : span }

type t = decision array
(** One decision per level, index 0 = outermost. *)

val span1 : span

val dims : dim list
(** The logical dimensions in order: [x; y; z]. The code generator supports
    three, matching CUDA's block dimensionality. *)

val dim_index : dim -> int
val dim_name : dim -> string

val threads_per_block : t -> int
(** Product of the block sizes of all levels. *)

val dop : sizes:int array -> t -> int
(** Degree of parallelism enabled by the mapping for the given level sizes:
    Span(n) contributes [size/n], Span(all) contributes the level's block
    size (paper Section IV-D: "span(all) contributes to DOP not in terms of
    its loop size but in terms of the block size"), Split(k) contributes
    [bsize * k]. *)

val level_of_dim : t -> dim -> int option
(** Which level (if any) the mapping assigns to a hardware dimension. *)

val block_extent : t -> dim -> int
(** Block size along a hardware dimension (1 when unused). *)

val grid_extent : sizes:int array -> t -> dim -> int
(** Number of blocks along a hardware dimension: ceil(size / (bsize * n))
    for Span(n), 1 for Span(all), k for Split(k). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
