type span_all_reason = Global_sync of string | Dynamic_size of string

type soft =
  | Coalesce of {
      strides : (int * int option) list;
      buf : string;
      weight : float;
    }
  | Min_block of { weight : float }
  | Fit of { level : int; size : int; weight : float }
  | Lean_reduce of { level : int; weight : float }

let intrinsic_coalesce = 10.
let intrinsic_min_block = 0.2
let intrinsic_fit = 0.3
let intrinsic_lean_reduce = 0.15

let soft_weight = function
  | Coalesce { weight; _ }
  | Min_block { weight }
  | Fit { weight; _ }
  | Lean_reduce { weight; _ } ->
    weight

let pp_soft ppf = function
  | Coalesce { strides; buf; weight } ->
    Format.fprintf ppf "coalesce(%s, [%s], w=%g)" buf
      (String.concat "; "
         (List.map
            (fun (l, s) ->
              Printf.sprintf "L%d:%s" l
                (match s with Some v -> string_of_int v | None -> "?"))
            strides))
      weight
  | Min_block { weight } -> Format.fprintf ppf "min_block(w=%g)" weight
  | Fit { level; size; weight } ->
    Format.fprintf ppf "fit(L%d, size=%d, w=%g)" level size weight
  | Lean_reduce { level; weight } ->
    Format.fprintf ppf "lean_reduce(L%d, w=%g)" level weight

let pp_reason ppf = function
  | Global_sync p -> Format.fprintf ppf "global sync (%s)" p
  | Dynamic_size p -> Format.fprintf ppf "dynamic size (%s)" p
