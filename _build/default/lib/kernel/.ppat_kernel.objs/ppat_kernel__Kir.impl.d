lib/kernel/kir.ml: Array Format Hashtbl List Ppat_gpu Ppat_ir Printf String
