lib/kernel/interp.ml: Array Device Effect Float Format Hashtbl Kir List Memory Option Ppat_gpu Ppat_ir Stats
