lib/kernel/interp.mli: Kir Ppat_gpu
