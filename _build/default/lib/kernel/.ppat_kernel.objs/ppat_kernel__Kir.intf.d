lib/kernel/kir.mli: Format Ppat_gpu Ppat_ir
