(** Sequential reference interpreter of pattern-IR programs.

    This is the semantic oracle of the whole reproduction: every simulated
    GPU execution is checked against it, and its operation counts feed the
    multi-core CPU cost model used as the baseline of paper Figure 14. *)

type counts = {
  ops : float;  (** scalar arithmetic operations executed *)
  bytes : float;  (** bytes read + written on global buffers *)
}

val run :
  ?params:(string * int) list ->
  Ppat_ir.Pat.prog ->
  Ppat_ir.Host.data ->
  Ppat_ir.Host.data * counts
(** Execute the whole program (all host steps) over the given input data.
    Buffers absent from the input are zero-initialised. Returns the final
    contents of every program buffer, in program buffer order, together
    with execution counts.

    Filter outputs are compacted in index order; group-by outputs are
    ordered by key segment and, within a segment, by input index — the
    canonical orders against which unordered GPU results are normalised.

    @raise Failure on semantic errors (out-of-bounds access, undefined
    variable, type confusion). *)
