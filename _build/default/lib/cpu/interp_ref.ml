open Ppat_ir

type counts = { ops : float; bytes : float }

type v = VI of int | VF of float | VB of bool

let die fmt = Format.kasprintf failwith fmt

let v_name = function VI _ -> "int" | VF _ -> "float" | VB _ -> "bool"

let as_int = function
  | VI n -> n
  | VB b -> if b then 1 else 0
  | VF _ -> die "expected int, got float"

let as_bool = function
  | VB b -> b
  | VI n -> n <> 0
  | VF _ -> die "expected bool, got float"

let bin op a b =
  let open Exp in
  match op, a, b with
  | Add, VI x, VI y -> VI (x + y)
  | Add, VF x, VF y -> VF (x +. y)
  | Sub, VI x, VI y -> VI (x - y)
  | Sub, VF x, VF y -> VF (x -. y)
  | Mul, VI x, VI y -> VI (x * y)
  | Mul, VF x, VF y -> VF (x *. y)
  | Div, VI x, VI y -> if y = 0 then die "div by zero" else VI (x / y)
  | Div, VF x, VF y -> VF (x /. y)
  | Mod, VI x, VI y -> if y = 0 then die "mod by zero" else VI (x mod y)
  | Min, VI x, VI y -> VI (min x y)
  | Min, VF x, VF y -> VF (Float.min x y)
  | Max, VI x, VI y -> VI (max x y)
  | Max, VF x, VF y -> VF (Float.max x y)
  | And, VB x, VB y -> VB (x && y)
  | Or, VB x, VB y -> VB (x || y)
  | op, a, b ->
    die "binop %s on %s and %s" (binop_name op) (v_name a) (v_name b)

let un op a =
  let open Exp in
  match op, a with
  | Neg, VI x -> VI (-x)
  | Neg, VF x -> VF (-.x)
  | Not, VB x -> VB (not x)
  | Sqrt, VF x -> VF (Float.sqrt x)
  | Exp_, VF x -> VF (Float.exp x)
  | Log_, VF x -> VF (Float.log x)
  | Abs, VF x -> VF (Float.abs x)
  | Abs, VI x -> VI (abs x)
  | I2f, VI x -> VF (float_of_int x)
  | F2i, VF x -> VI (int_of_float x)
  | op, a -> die "unop %s on %s" (unop_name op) (v_name a)

let cmp op a b =
  let open Exp in
  let c =
    match a, b with
    | VI x, VI y -> compare x y
    | VF x, VF y -> compare x y
    | VB x, VB y -> compare x y
    | a, b -> die "compare %s with %s" (v_name a) (v_name b)
  in
  VB
    (match op with
     | Eq -> c = 0
     | Ne -> c <> 0
     | Lt -> c < 0
     | Le -> c <= 0
     | Gt -> c > 0
     | Ge -> c >= 0)

(* scoped interpreter context; [vars], [locals] and [idxs] are rebound
   functionally, globals and counters are shared mutable state *)
type counters = { mutable ops : float; mutable bytes : float }

type ctx = {
  prog : Pat.prog;
  params : (string * int) list;
  globals : (string, Host.buf) Hashtbl.t;
  c : counters;  (* shared across scope copies of the context *)
  vars : (string * v ref) list;
  locals : (string * v array) list;
  idxs : (int * int) list;
}

let buffer_of ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some b -> Some b
  | None -> None

let dims_of ctx name =
  let b = Pat.find_buffer ctx.prog name in
  List.map (Ty.extent_value ctx.params) b.dims, b.blayout

let linear ctx name idxs =
  let dims, layout = dims_of ctx name in
  if List.length dims <> List.length idxs then
    die "buffer %s: %d dims, %d indices" name (List.length dims)
      (List.length idxs);
  let pairs =
    match layout with
    | Pat.Row_major -> List.combine idxs dims
    | Pat.Col_major -> List.rev (List.combine idxs dims)
  in
  match pairs with
  | [] -> 0
  | (i0, _) :: rest ->
    List.fold_left (fun acc (i, d) -> (acc * d) + i) i0 rest

let read_global ctx name idxs =
  match buffer_of ctx name with
  | None -> die "read of unknown buffer %S" name
  | Some buf ->
    let li = linear ctx name idxs in
    ctx.c.bytes <- ctx.c.bytes +. 8.;
    (match buf with
     | Host.F a ->
       if li < 0 || li >= Array.length a then
         die "read out of bounds: %s[%d]" name li;
       VF a.(li)
     | Host.I a ->
       if li < 0 || li >= Array.length a then
         die "read out of bounds: %s[%d]" name li;
       VI a.(li))

let write_global ctx name idxs v =
  match buffer_of ctx name with
  | None -> die "write to unknown buffer %S" name
  | Some buf ->
    let li = linear ctx name idxs in
    ctx.c.bytes <- ctx.c.bytes +. 8.;
    (match buf, v with
     | Host.F a, VF x ->
       if li < 0 || li >= Array.length a then
         die "write out of bounds: %s[%d]" name li;
       a.(li) <- x
     | Host.I a, (VI _ | VB _) ->
       if li < 0 || li >= Array.length a then
         die "write out of bounds: %s[%d]" name li;
       a.(li) <- as_int v
     | Host.F _, x -> die "write of %s into float buffer %s" (v_name x) name
     | Host.I _, x -> die "write of %s into int buffer %s" (v_name x) name)

let rec eval ctx (e : Exp.t) : v =
  match e with
  | Exp.Int n -> VI n
  | Exp.Float x -> VF x
  | Exp.Bool b -> VB b
  | Exp.Idx pid -> (
    match List.assoc_opt pid ctx.idxs with
    | Some i -> VI i
    | None -> die "free pattern index i%d" pid)
  | Exp.Param p -> (
    match List.assoc_opt p ctx.params with
    | Some v -> VI v
    | None -> die "unbound parameter %S" p)
  | Exp.Var x -> (
    match List.assoc_opt x ctx.vars with
    | Some v -> !v
    | None -> die "unbound variable %S" x)
  | Exp.Len name -> (
    match List.assoc_opt name ctx.locals with
    | Some a -> VI (Array.length a)
    | None -> die "len of unknown local array %S" name)
  | Exp.Read (name, idxs) -> (
    ctx.c.ops <- ctx.c.ops +. 1.;
    let ivals = List.map (fun i -> as_int (eval ctx i)) idxs in
    match List.assoc_opt name ctx.locals with
    | Some arr -> (
      match ivals with
      | [ i ] ->
        if i < 0 || i >= Array.length arr then
          die "local read out of bounds: %s[%d]" name i;
        arr.(i)
      | _ -> die "local array %S read with %d indices" name (List.length ivals))
    | None -> read_global ctx name ivals)
  | Exp.Bin (op, a, b) ->
    ctx.c.ops <- ctx.c.ops +. 1.;
    bin op (eval ctx a) (eval ctx b)
  | Exp.Un (op, a) ->
    ctx.c.ops <- ctx.c.ops +. 1.;
    un op (eval ctx a)
  | Exp.Cmp (op, a, b) ->
    ctx.c.ops <- ctx.c.ops +. 1.;
    cmp op (eval ctx a) (eval ctx b)
  | Exp.Select (c, a, b) ->
    ctx.c.ops <- ctx.c.ops +. 1.;
    if as_bool (eval ctx c) then eval ctx a else eval ctx b

let size_of ctx (p : Pat.pattern) =
  match p.size with
  | Pat.Sconst n -> n
  | Pat.Sparam s -> (
    match List.assoc_opt s ctx.params with
    | Some v -> v
    | None -> die "unbound size parameter %S" s)
  | Pat.Sexp e -> as_int (eval ctx e)
  | Pat.Sdyn e -> as_int (eval ctx e)

(* run body statements, returning the extended context *)
let rec run_stmts ctx stmts = List.fold_left run_stmt ctx stmts

and run_stmt ctx (s : Pat.stmt) =
  match s with
  | Pat.Let (x, e) -> { ctx with vars = (x, ref (eval ctx e)) :: ctx.vars }
  | Pat.Assign (x, e) -> (
    match List.assoc_opt x ctx.vars with
    | Some cell ->
      cell := eval ctx e;
      ctx
    | None -> die "assignment to unbound variable %S" x)
  | Pat.Store (name, idxs, e) ->
    let v = eval ctx e in
    (match List.assoc_opt name ctx.locals with
     | Some arr -> (
       match List.map (fun i -> as_int (eval ctx i)) idxs with
       | [ i ] ->
         if i < 0 || i >= Array.length arr then
           die "local store out of bounds: %s[%d]" name i;
         arr.(i) <- v
       | l -> die "local array %S written with %d indices" name (List.length l))
     | None ->
       write_global ctx name (List.map (fun i -> as_int (eval ctx i)) idxs) v);
    ctx
  | Pat.Atomic_add (name, idxs, e) ->
    let v = eval ctx e in
    let ivals = List.map (fun i -> as_int (eval ctx i)) idxs in
    (match List.assoc_opt name ctx.locals with
     | Some arr -> (
       match ivals with
       | [ i ] -> arr.(i) <- bin Exp.Add arr.(i) v
       | _ -> die "local atomic with multiple indices")
     | None ->
       let old = read_global ctx name ivals in
       write_global ctx name ivals (bin Exp.Add old v));
    ctx
  | Pat.Nested n -> run_nested ctx n
  | Pat.If (c, t, e) ->
    if as_bool (eval ctx c) then ignore (run_stmts ctx t)
    else ignore (run_stmts ctx e);
    ctx
  | Pat.For (x, lo, hi, body) ->
    let l = as_int (eval ctx lo) and h = as_int (eval ctx hi) in
    for i = l to h - 1 do
      ignore (run_stmts { ctx with vars = (x, ref (VI i)) :: ctx.vars } body)
    done;
    ctx
  | Pat.While (c, body) ->
    (* sequential while: body must act through stores/atomics since lets
       are scoped; loop-carried state lives in locals or globals *)
    let guard = ref 0 in
    while as_bool (eval ctx c) do
      ignore (run_stmts ctx body);
      incr guard;
      if !guard > 100_000_000 then die "runaway while loop"
    done;
    ctx

and run_nested ctx (n : Pat.nested) =
  let p = n.pat in
  let size = size_of ctx p in
  let at i = { ctx with idxs = (p.pid, i) :: ctx.idxs } in
  let yield_at i y =
    let c = run_stmts (at i) p.body in
    eval c y
  in
  match p.kind, n.bind with
  | Pat.Foreach, _ ->
    for i = 0 to size - 1 do
      ignore (run_stmts (at i) p.body)
    done;
    ctx
  | Pat.Map { yield }, Some name ->
    if is_global ctx name then begin
      for i = 0 to size - 1 do
        write_global ctx name [ i ] (yield_at i yield)
      done;
      ctx
    end
    else begin
      let arr = Array.make size (VF 0.) in
      for i = 0 to size - 1 do
        arr.(i) <- yield_at i yield
      done;
      { ctx with locals = (name, arr) :: ctx.locals }
    end
  | Pat.Reduce { yield; r }, Some name ->
    let acc = ref (eval ctx r.init) in
    for i = 0 to size - 1 do
      let v = yield_at i yield in
      let cctx =
        { ctx with vars = (r.a, ref !acc) :: (r.b, ref v) :: ctx.vars }
      in
      acc := eval cctx r.combine
    done;
    bind_scalar ctx name !acc
  | Pat.Arg_min { yield }, Some name ->
    let best = ref infinity and best_i = ref 0 in
    for i = 0 to size - 1 do
      match yield_at i yield with
      | VF x -> if x < !best then (best := x; best_i := i)
      | VI x ->
        if float_of_int x < !best then (best := float_of_int x; best_i := i)
      | VB _ -> die "argmin over booleans"
    done;
    bind_scalar ctx name (VI !best_i)
  | Pat.Filter { pred; yield }, Some name ->
    let out = ref [] and count = ref 0 in
    for i = 0 to size - 1 do
      let c = run_stmts (at i) p.body in
      if as_bool (eval c pred) then begin
        out := eval c yield :: !out;
        incr count
      end
    done;
    let vals = List.rev !out in
    if is_global ctx name then begin
      List.iteri (fun i v -> write_global ctx name [ i ] v) vals;
      write_global ctx (name ^ "_count") [ 0 ] (VI !count);
      ctx
    end
    else die "nested filter %s must bind a global output" p.label
  | Pat.Group_by { key; value; num_keys }, Some name ->
    let nk = Ty.extent_value ctx.params num_keys in
    let buckets = Array.make nk [] in
    for i = 0 to size - 1 do
      let c = run_stmts (at i) p.body in
      let k = as_int (eval c key) in
      if k < 0 || k >= nk then die "group key %d out of range [0,%d)" k nk;
      buckets.(k) <- eval c value :: buckets.(k)
    done;
    if not (is_global ctx name) then
      die "nested group_by %s must bind a global output" p.label;
    (* counts, exclusive-scan offsets, then values segment by segment *)
    let off = ref 0 in
    Array.iteri
      (fun k b ->
        let c = List.length b in
        write_global ctx (name ^ "_counts") [ k ] (VI c);
        write_global ctx (name ^ "_offsets") [ k ] (VI !off);
        List.iteri
          (fun j v -> write_global ctx name [ !off + j ] v)
          (List.rev b);
        off := !off + c)
      buckets;
    ctx
  | (Pat.Map _ | Pat.Reduce _ | Pat.Arg_min _ | Pat.Filter _ | Pat.Group_by _),
    None ->
    die "pattern %s produces a value but has no binding" p.label

and is_global ctx name = Hashtbl.mem ctx.globals name

and bind_scalar ctx name v =
  if is_global ctx name then begin
    write_global ctx name [ 0 ] v;
    ctx
  end
  else { ctx with vars = (name, ref v) :: ctx.vars }

let rec run_step ctx (s : Pat.step) =
  match s with
  | Pat.Launch n -> ignore (run_nested ctx n)
  | Pat.Host_loop { var; count; body } ->
    let n = Ty.extent_value ctx.params count in
    for i = 0 to n - 1 do
      let ctx' = { ctx with params = (var, i) :: ctx.params } in
      List.iter (run_step ctx') body
    done
  | Pat.Swap (a, b) ->
    let ba = Hashtbl.find ctx.globals a and bb = Hashtbl.find ctx.globals b in
    Hashtbl.replace ctx.globals a bb;
    Hashtbl.replace ctx.globals b ba
  | Pat.While_flag { flag; max_iter; body } ->
    let continue_ = ref true and iters = ref 0 in
    while !continue_ && !iters < max_iter do
      (match Hashtbl.find ctx.globals flag with
       | Host.I a -> a.(0) <- 0
       | Host.F a -> a.(0) <- 0.);
      List.iter (run_step ctx) body;
      (match Hashtbl.find ctx.globals flag with
       | Host.I a -> continue_ := a.(0) <> 0
       | Host.F a -> continue_ := a.(0) <> 0.);
      incr iters
    done

let run ?(params = []) (prog : Pat.prog) (data : Host.data) =
  let params = Host.params_of prog params in
  let globals = Hashtbl.create 16 in
  List.iter (fun (k, b) -> Hashtbl.replace globals k b)
    (Host.alloc_all prog params data);
  let ctx =
    { prog; params; globals; c = { ops = 0.; bytes = 0. }; vars = [];
      locals = []; idxs = [] }
  in
  List.iter (run_step ctx) prog.steps;
  let out =
    List.map (fun (b : Pat.buffer) -> (b.bname, Hashtbl.find globals b.bname))
      prog.buffers
  in
  (out, ({ ops = ctx.c.ops; bytes = ctx.c.bytes } : counts))
