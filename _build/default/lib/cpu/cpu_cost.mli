(** Analytical multi-core CPU cost model — the baseline of paper Figure 14.

    The reference machine is the paper's Dell Precision T7500n: two
    quad-core Xeon X5550-class processors at 2.67 GHz. The model charges
    the larger of a throughput bound (operations over cores x SIMD issue)
    and a memory bound (bytes over socket bandwidth), taking the operation
    and byte counts measured by the reference interpreter. *)

type t = {
  cores : int;
  clock_ghz : float;
  ops_per_cycle : float;  (** per-core scalar-op throughput (SSE-ish) *)
  mem_gbps : float;
}

val xeon_2x4 : t
(** 8 cores, 2.67 GHz, 4 ops/cycle/core, 24 GB/s. *)

val seconds : t -> Interp_ref.counts -> float
