type t = {
  cores : int;
  clock_ghz : float;
  ops_per_cycle : float;
  mem_gbps : float;
}

let xeon_2x4 = { cores = 8; clock_ghz = 2.67; ops_per_cycle = 4.; mem_gbps = 24. }

let seconds m (c : Interp_ref.counts) =
  let compute =
    c.ops /. (float_of_int m.cores *. m.ops_per_cycle *. m.clock_ghz *. 1e9)
  in
  let memory = c.bytes /. (m.mem_gbps *. 1e9) in
  Float.max compute memory
