lib/cpu/interp_ref.ml: Array Exp Float Format Hashtbl Host List Pat Ppat_ir Ty
