lib/cpu/cpu_cost.mli: Interp_ref
