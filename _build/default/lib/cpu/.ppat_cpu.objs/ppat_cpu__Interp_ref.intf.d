lib/cpu/interp_ref.mli: Ppat_ir
