lib/cpu/cpu_cost.ml: Float Interp_ref
