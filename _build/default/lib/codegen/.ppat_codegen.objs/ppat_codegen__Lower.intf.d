lib/codegen/lower.mli: Ppat_core Ppat_gpu Ppat_ir Ppat_kernel
