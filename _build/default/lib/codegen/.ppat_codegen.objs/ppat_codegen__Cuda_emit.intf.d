lib/codegen/cuda_emit.mli: Ppat_ir Ppat_kernel
