lib/codegen/lower.ml: Access Array Exp Format Host Levels List Option Pat Ppat_core Ppat_gpu Ppat_ir Ppat_kernel Printf Scan String Ty
