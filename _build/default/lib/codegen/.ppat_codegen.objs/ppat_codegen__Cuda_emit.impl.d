lib/codegen/cuda_emit.ml: Array Buffer Exp Float Hashtbl List Pat Ppat_ir Ppat_kernel Printf String Ty
