lib/codegen/scan.mli: Ppat_ir Ppat_kernel
