lib/codegen/scan.ml: Exp Ppat_ir Ppat_kernel Ty
