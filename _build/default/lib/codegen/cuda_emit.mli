(** CUDA C source emission from kernel IR (paper Figure 9).

    The simulator executes the kernel IR directly; this module prints the
    equivalent [__global__] function so the generated code can be inspected,
    diffed against the paper's examples, and (outside this sandbox)
    compiled with nvcc. Buffer parameters are typed from the program's
    buffer table; registers use the types inferred during lowering. *)

val kernel :
  ?prog:Ppat_ir.Pat.prog -> Ppat_kernel.Kir.kernel -> string
(** CUDA source of one kernel. When [prog] is given, pointer parameters of
    program buffers get precise element types; unknown buffers (temps)
    default to [double*]. *)

val launch_comment : Ppat_kernel.Kir.launch -> string
(** A [// kernel<<<grid, block>>>] line describing the launch geometry. *)
