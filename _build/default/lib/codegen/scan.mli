(** Parallel exclusive prefix-sum substrate.

    The paper's Filter produces an ordered compaction, which requires a
    scan over the predicate flags ("a reduction or filter using multiple
    kernel launches", Section VII). This module emits the classic
    multi-kernel scan: per-block Hillis-Steele scans in shared memory, a
    recursive scan over the block sums, and an offset-add pass — all as
    ordinary kernel-IR launches that run on the simulator like any
    generated code. *)

val block_threads : int
(** Elements scanned per block (one per thread). *)

val exclusive :
  name_prefix:string ->
  src:string ->
  dst:string ->
  total:string ->
  n:int ->
  kparams:(string * int) list ->
  Ppat_kernel.Kir.launch list * (string * Ppat_ir.Ty.scalar * int) list
(** Launches computing [dst.(i) = sum of src.(0..i-1)] over the [n]-element
    integer buffer [src], and [total.(0) = sum of src]. [dst], [src] and
    [total] must already exist in device memory; the returned
    [(name, elem, elems)] temporaries (block sums at each recursion level)
    must be allocated by the caller. All names are prefixed to stay unique
    per call site. *)
