open Ppat_ir
module Kir = Ppat_kernel.Kir

let block_threads = 256

let ik n = Kir.Int n
let ( +: ) a b = Kir.Bin (Exp.Add, a, b)
let ( -: ) a b = Kir.Bin (Exp.Sub, a, b)
let ( *: ) a b = Kir.Bin (Exp.Mul, a, b)
let ( <: ) a b = Kir.Cmp (Exp.Lt, a, b)
let ( >=: ) a b = Kir.Cmp (Exp.Ge, a, b)
let ( =: ) a b = Kir.Cmp (Exp.Eq, a, b)
let tx = Kir.Tid Kir.X
let bx = Kir.Bid Kir.X
let cdiv a b = (a + b - 1) / b

let mk_kernel name ~smem ~rb body =
  {
    Kir.kname = name;
    nregs = Kir.Rb.count rb;
    reg_names = Kir.Rb.names rb;
    reg_types = Kir.Rb.types rb;
    smem;
    body;
  }

(* one block scans [block_threads] elements of [src] into exclusive [dst];
   the block total goes to [sums.(blockIdx.x)] when [sums] is given *)
let scan_block_kernel name ~src ~dst ~sums ~n =
  let rb = Kir.Rb.create () in
  let reg nm =
    let r = Kir.Rb.fresh rb nm in
    Kir.Rb.set_type rb r Ty.I32;
    r
  in
  let g = reg "g" in
  let x = reg "x" in
  let v = reg "v" in
  let b = block_threads in
  let steps = ref [] in
  let off = ref 1 in
  (* Hillis-Steele inclusive scan in shared memory *)
  while !off < b do
    steps :=
      !steps
      @ [
          Kir.If
            ( tx >=: ik !off,
              [ Kir.Set (v, Kir.Load_s ("sm", tx -: ik !off)) ],
              [] );
          Kir.Sync;
          Kir.If
            ( tx >=: ik !off,
              [ Kir.Store_s ("sm", tx, Kir.Load_s ("sm", tx) +: Kir.Reg v) ],
              [] );
          Kir.Sync;
        ];
    off := !off * 2
  done;
  let body =
    [
      Kir.Set (g, (bx *: ik b) +: tx);
      (* Select evaluates both arms, so the out-of-range load is clamped *)
      Kir.Set
        ( x,
          Kir.Select
            ( Kir.Reg g <: ik n,
              Kir.Load_g
                (src, Kir.Bin (Exp.Min, Kir.Reg g, ik (max 0 (n - 1)))),
              ik 0 ) );
    ]
    @ [ Kir.Store_s ("sm", tx, Kir.Reg x); Kir.Sync ]
    @ !steps
    @ [
        (* exclusive result: shift the inclusive scan right by one *)
        Kir.If
          ( Kir.Reg g <: ik n,
            [
              Kir.Store_g
                ( dst,
                  Kir.Reg g,
                  Kir.Select
                    ( tx =: ik 0,
                      ik 0,
                      Kir.Load_s ("sm", Kir.Bin (Exp.Max, tx -: ik 1, ik 0))
                    ) );
            ],
            [] );
      ]
    @
    match sums with
    | None -> []
    | Some sums ->
      [
        Kir.If
          ( tx =: ik 0,
            [ Kir.Store_g (sums, bx, Kir.Load_s ("sm", ik (b - 1))) ],
            [] );
      ]
  in
  mk_kernel name
    ~smem:[ { Kir.sname = "sm"; selem = Ty.I32; selems = block_threads } ]
    ~rb body

(* dst.(g) += offsets.(blockIdx.x) for the add-back pass *)
let add_offsets_kernel name ~dst ~offsets ~n =
  let rb = Kir.Rb.create () in
  let g = Kir.Rb.fresh rb "g" in
  Kir.Rb.set_type rb g Ty.I32;
  mk_kernel name ~smem:[] ~rb
    [
      Kir.Set (g, (bx *: ik block_threads) +: tx);
      Kir.If
        ( Kir.Reg g <: ik n,
          [
            Kir.Store_g
              ( dst,
                Kir.Reg g,
                Kir.Load_g (dst, Kir.Reg g) +: Kir.Load_g (offsets, bx) );
          ],
          [] );
    ]

(* total.(0) = dst.(n-1) + src.(n-1) *)
let total_kernel name ~src ~dst ~total ~n =
  let rb = Kir.Rb.create () in
  mk_kernel name ~smem:[] ~rb
    [
      Kir.If
        ( Kir.Bin (Exp.And, tx =: ik 0, bx =: ik 0),
          [
            Kir.Store_g
              ( total,
                ik 0,
                Kir.Load_g (src, ik (n - 1)) +: Kir.Load_g (dst, ik (n - 1))
              );
          ],
          [] );
    ]

let rec exclusive ~name_prefix ~src ~dst ~total ~n ~kparams =
  let b = block_threads in
  let nb = cdiv n b in
  let launch kernel grid =
    { Kir.kernel; grid; block = (b, 1, 1); kparams }
  in
  if nb = 1 then
    ( [
        launch
          (scan_block_kernel (name_prefix ^ "_scan") ~src ~dst ~sums:None ~n)
          (1, 1, 1);
        launch (total_kernel (name_prefix ^ "_total") ~src ~dst ~total ~n)
          (1, 1, 1);
      ],
      [] )
  else begin
    let sums = name_prefix ^ "_sums" in
    let sums_scanned = name_prefix ^ "_sums_x" in
    let sums_total = name_prefix ^ "_sums_t" in
    let sub_launches, sub_temps =
      exclusive ~name_prefix:(name_prefix ^ "_s") ~src:sums ~dst:sums_scanned
        ~total:sums_total ~n:nb ~kparams
    in
    ( [
        launch
          (scan_block_kernel (name_prefix ^ "_scan") ~src ~dst
             ~sums:(Some sums) ~n)
          (nb, 1, 1);
      ]
      @ sub_launches
      @ [
          launch
            (add_offsets_kernel (name_prefix ^ "_add") ~dst
               ~offsets:sums_scanned ~n)
            (nb, 1, 1);
          launch (total_kernel (name_prefix ^ "_total") ~src ~dst ~total ~n)
            (1, 1, 1);
        ],
      [ (sums, Ty.I32, nb); (sums_scanned, Ty.I32, nb);
        (sums_total, Ty.I32, 1) ]
      @ sub_temps )
  end
