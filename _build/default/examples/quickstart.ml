(* Quickstart: the paper's running example end to end.

   1. write sumRows as a nested parallel pattern (Figure 1);
   2. run the mapping analysis and look at the constraints and the chosen
      mapping (Section IV);
   3. emit the CUDA kernel (Figure 9);
   4. execute on the simulated K20c and validate against the CPU reference,
      comparing against the fixed strategies of previous work (Figure 3).

   Run with: dune exec examples/quickstart.exe *)

open Ppat_ir

let dev = Ppat_gpu.Device.k20c

let () =
  (* --- 1. the program: m mapRows { r => r reduce (+) } --- *)
  let b = Builder.create () in
  let top =
    Builder.map b ~label:"sum_rows" ~size:(Pat.Sparam "R") (fun row ->
        let red =
          Builder.reduce b ~label:"row_sum" ~size:(Pat.Sparam "C") (fun col ->
              ([], Exp.Read ("m", [ row; col ])))
        in
        ([ Builder.bind "s" red ], Exp.Var "s"))
  in
  let prog =
    {
      Pat.pname = "quickstart";
      defaults = [ ("R", 4096); ("C", 512) ];
      buffers =
        [
          Pat.buffer "m" Ty.F64 [ Ty.Param "R"; Ty.Param "C" ] Pat.Input;
          Pat.buffer "out" Ty.F64 [ Ty.Param "R" ] Pat.Output;
        ];
      steps = [ Pat.Launch { bind = Some "out"; pat = top } ];
    }
  in
  Format.printf "=== the program ===@.%a@.@." Pat.pp_prog prog;

  (* --- 2. mapping analysis --- *)
  let nested = match prog.steps with [ Pat.Launch n ] -> n | _ -> assert false in
  let constraints =
    Ppat_core.Collect.collect ~params:prog.defaults ?bind:nested.bind dev
      prog nested.pat
  in
  Format.printf "=== constraints (Section IV-C) ===@.%a@." Ppat_core.Collect.pp
    constraints;
  let result = Ppat_core.Search.search dev constraints in
  Format.printf
    "=== chosen mapping (Algorithm 1: %d candidates scored) ===@.%s  (score \
     %.4g, DOP %d)@.@."
    result.candidates
    (Ppat_core.Mapping.to_string result.mapping)
    result.score result.dop;

  (* --- 3. generated CUDA (Figure 9) --- *)
  let lowered =
    Ppat_codegen.Lower.lower dev ~params:prog.defaults prog nested
      result.mapping
  in
  List.iter
    (fun (l : Ppat_kernel.Kir.launch) ->
      print_endline (Ppat_codegen.Cuda_emit.launch_comment l);
      print_endline (Ppat_codegen.Cuda_emit.kernel ~prog l.kernel))
    lowered.launches;

  (* --- 4. simulate, validate, compare strategies --- *)
  let data =
    [ ("m", Host.F (Ppat_apps.Workloads.farray ~seed:1 (4096 * 512))) ]
  in
  let cpu = Ppat_harness.Runner.run_cpu prog data in
  Format.printf "CPU model (2x quad-core Xeon): %.4g s@." cpu.cpu_seconds;
  List.iter
    (fun strat ->
      let r = Ppat_harness.Runner.run_gpu dev prog strat data in
      let ok =
        Ppat_harness.Runner.check prog ~expected:cpu.cpu_data ~actual:r.data
      in
      Format.printf "%-20s %.4g s  %s@."
        (Ppat_core.Strategy.name strat)
        r.seconds
        (match ok with Ok () -> "(validated)" | Error e -> "MISMATCH: " ^ e))
    Ppat_core.Strategy.[ Auto; One_d; Thread_block_thread; Warp_based ]
