(* Mapping-space explorer — interactive version of paper Figure 17.

   Enumerates the hard-feasible mappings of a skewed Mandelbrot rendering,
   simulates a sample of them, and prints (score, simulated time, mapping)
   so the score/performance correlation — and its false negatives — can be
   inspected. Also shows where the automatic pick and the fixed strategies
   land.

   Run with: dune exec examples/mapping_explorer.exe *)

let () =
  let points, table =
    Ppat_apps.Experiments.fig17 ~max_points:36 Ppat_gpu.Device.k20c
  in
  Ppat_apps.Experiments.print_sweep Format.std_formatter points;
  Ppat_apps.Experiments.print_table Format.std_formatter table;
  (* simple correlation summary: do high scores predict low times? *)
  let best_time =
    List.fold_left (fun acc p -> Float.min acc p.Ppat_apps.Experiments.sw_seconds)
      infinity points
  in
  let top_scored =
    List.fold_left
      (fun (bs, bt) p ->
        let open Ppat_apps.Experiments in
        if p.score > bs then (p.score, p.sw_seconds) else (bs, bt))
      (neg_infinity, nan) points
  in
  Format.printf
    "@.best simulated time %.4g s; the top-scored mapping runs in %.4g s \
     (%.2fx of best)@."
    best_time (snd top_scored)
    (snd top_scored /. best_time)
