examples/pagerank.mli:
