examples/pagerank.ml: Array Format List Ppat_apps Ppat_core Ppat_gpu Ppat_harness Ppat_ir
