examples/quickstart.mli:
