examples/quickstart.ml: Builder Exp Format Host List Pat Ppat_apps Ppat_codegen Ppat_core Ppat_gpu Ppat_harness Ppat_ir Ppat_kernel Ty
