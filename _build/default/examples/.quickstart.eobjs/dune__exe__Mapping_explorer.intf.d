examples/mapping_explorer.mli:
