examples/mapping_explorer.ml: Float Format List Ppat_apps Ppat_gpu
