(* Spam-filter training (Naive Bayes) — the paper's third case study
   (Section VI-E).

   The same document-by-word count matrix is reduced along rows (words per
   document) and along columns (per-word mass in spam and ham documents):
   two kernels with opposite locality, which is exactly what a fixed 1D
   mapping cannot serve. The example prints the per-kernel mapping
   decisions to show the dimensions flipping, then derives the classic
   log-odds spam score per word from the simulated GPU results.

   Run with: dune exec examples/spam_filter.exe *)

let dev = Ppat_gpu.Device.k20c

let () =
  let app = Ppat_apps.Naive_bayes.app ~docs:2048 ~words:512 () in
  let data = Ppat_apps.App.input_data app in
  let cpu = Ppat_harness.Runner.run_cpu ~params:app.params app.prog data in
  let gpu =
    Ppat_harness.Runner.run_gpu ~params:app.params dev app.prog
      Ppat_core.Strategy.Auto data
  in
  (match
     Ppat_harness.Runner.check ~eps:1e-6 ~unordered:app.unordered app.prog
       ~expected:cpu.cpu_data ~actual:gpu.data
   with
   | Ok () -> print_endline "GPU results validated against the CPU oracle."
   | Error e -> failwith e);
  print_endline "per-kernel mapping decisions (note the flipped dimensions):";
  List.iter
    (fun (label, (d : Ppat_core.Strategy.decision)) ->
      Format.printf "  %-14s %s@." label
        (Ppat_core.Mapping.to_string d.mapping))
    gpu.decisions;
  let oned =
    Ppat_harness.Runner.run_gpu ~params:app.params dev app.prog
      Ppat_core.Strategy.One_d data
  in
  Format.printf "MultiDim %.4g s vs 1D %.4g s (%.1fx)@." gpu.seconds
    oned.seconds
    (oned.seconds /. gpu.seconds);
  (* classic smoothed log-odds from the trained masses *)
  let spam = Ppat_ir.Host.get_f gpu.data "spam_mass" in
  let ham = Ppat_ir.Host.get_f gpu.data "ham_mass" in
  let score w = log ((spam.(w) +. 1.) /. (ham.(w) +. 1.)) in
  let spammiest = ref 0 in
  for w = 1 to Array.length spam - 1 do
    if score w > score !spammiest then spammiest := w
  done;
  Format.printf "spammiest word id: %d (log-odds %.3f)@." !spammiest
    (score !spammiest)
