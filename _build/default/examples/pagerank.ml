(* PageRank — the paper's motivating nested-pattern example (Figure 5).

   The inner pattern iterates a node's neighbours, whose count is only
   known per node at run time: the analysis is forced to Span(all) on that
   level (Section IV-A) and ends up with a warp-per-node-style mapping that
   load-balances skewed degree distributions, reproducing Hong et al.'s
   hand-designed strategy automatically.

   Run with: dune exec examples/pagerank.exe *)

let dev = Ppat_gpu.Device.k20c

let () =
  let app = Ppat_apps.Pagerank.app ~nodes:16384 ~avg_degree:8 ~iters:3 () in
  Format.printf "=== PageRank as nested patterns (paper Figure 5) ===@.%a@.@."
    Ppat_ir.Pat.pp_prog app.prog;
  let data = Ppat_apps.App.input_data app in
  let cpu = Ppat_harness.Runner.run_cpu ~params:app.params app.prog data in
  List.iter
    (fun strat ->
      let r =
        Ppat_harness.Runner.run_gpu ~params:app.params dev app.prog strat
          data
      in
      let ok =
        Ppat_harness.Runner.check ~eps:1e-6 app.prog ~expected:cpu.cpu_data
          ~actual:r.data
      in
      Format.printf "%-20s %.4g s  %s@."
        (Ppat_core.Strategy.name strat)
        r.seconds
        (match ok with Ok () -> "(validated)" | Error e -> "MISMATCH " ^ e);
      List.iter
        (fun (label, (d : Ppat_core.Strategy.decision)) ->
          Format.printf "    %-12s -> %s@." label
            (Ppat_core.Mapping.to_string d.mapping))
        r.decisions)
    Ppat_core.Strategy.[ Auto; One_d; Warp_based ];
  (* show the first few ranks *)
  let pr = Ppat_ir.Host.get_f cpu.cpu_data "pr" in
  Format.printf "first ranks: %g %g %g %g ...@." pr.(0) pr.(1) pr.(2) pr.(3)
